package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// linPred predicts 1 + w*sum(pressures).
type linPred struct{ w float64 }

func (f linPred) PredictPressures(ps []float64) (float64, error) {
	var sum float64
	for _, p := range ps {
		sum += p
	}
	return 1 + f.w*sum, nil
}

// gatePred blocks every prediction until the gate channel closes.
type gatePred struct {
	inner core.Predictor
	gate  <-chan struct{}
}

func (g gatePred) PredictPressures(ps []float64) (float64, error) {
	<-g.gate
	return g.inner.PredictPressures(ps)
}

func testBackend() Backend {
	return Backend{
		Predictors: map[string]core.Predictor{
			"sens":   linPred{0.30},
			"quiet":  linPred{0.01},
			"noisy1": linPred{0.02},
			"noisy2": linPred{0.02},
		},
		Scores: map[string]float64{
			"sens": 0.5, "quiet": 0.5, "noisy1": 6, "noisy2": 6,
		},
	}
}

// newTestService builds an armed service over an 8x2 cluster with small
// search defaults, returning the observability pieces for assertions.
func newTestService(t *testing.T, mutate func(*Config)) (*Service, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(256)
	cfg := Config{
		NumHosts: 8, SlotsPerHost: 2, Seed: 42,
		Iterations: 60, Restarts: 1,
		Telemetry: reg, Tracer: tr,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.SetBackend(testBackend())
	return s, reg, tr
}

func fourApps() []AppDemand {
	return []AppDemand{
		{App: "sens", Units: 4}, {App: "quiet", Units: 4},
		{App: "noisy1", Units: 4}, {App: "noisy2", Units: 4},
	}
}

func mustPlace(t *testing.T, s *Service, req PlaceRequest) Response {
	t.Helper()
	resp, status, err := s.Place(req)
	if err != nil {
		t.Fatalf("Place: status %d: %v", status, err)
	}
	if status != http.StatusOK {
		t.Fatalf("Place status = %d", status)
	}
	return resp
}

// TestPlaceBasics: a successful placement fills every response field
// consistently.
func TestPlaceBasics(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	resp := mustPlace(t, s, PlaceRequest{ID: "r1", Apps: fourApps()})
	if resp.ID != "r1" || resp.Endpoint != "place" {
		t.Errorf("identity = %q/%q", resp.ID, resp.Endpoint)
	}
	if len(resp.Placement) != 8 || len(resp.Placement[0]) != 2 {
		t.Fatalf("placement dims = %dx%d", len(resp.Placement), len(resp.Placement[0]))
	}
	units := map[string]int{}
	for _, row := range resp.Placement {
		for _, app := range row {
			if app != "" {
				units[app]++
			}
		}
	}
	for _, d := range fourApps() {
		if units[d.App] != d.Units {
			t.Errorf("%s placed %d units, want %d", d.App, units[d.App], d.Units)
		}
	}
	if resp.Objective <= 0 || len(resp.Predicted) != 4 {
		t.Errorf("objective %v, predicted %v", resp.Objective, resp.Predicted)
	}
	if resp.Evaluations <= 0 {
		t.Error("no evaluations reported")
	}
	want := SimCostBase + SimCostPerEval*float64(resp.Evaluations)
	if resp.SimServiceSeconds != want {
		t.Errorf("sim service seconds %v, want %v", resp.SimServiceSeconds, want)
	}
	if !resp.QoSSatisfied {
		t.Error("unconstrained request not QoS-satisfied")
	}
}

// TestPlaceDeterministicUnderConcurrency is the tentpole's core claim:
// identical requests produce byte-identical responses no matter how they
// interleave with other traffic or how batches form.
func TestPlaceDeterministicUnderConcurrency(t *testing.T) {
	s, _, _ := newTestService(t, func(c *Config) { c.MaxBatch = 4; c.QueueDepth = 64 })

	// Serial reference responses for three distinct request contents.
	reqs := []PlaceRequest{
		{Apps: fourApps()},
		{Apps: fourApps(), Seed: 99},
		{Apps: []AppDemand{{App: "sens", Units: 2}, {App: "noisy1", Units: 2}}},
	}
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		b, err := json.Marshal(mustPlace(t, s, r))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = b
	}

	const lanes = 4
	var wg sync.WaitGroup
	errs := make(chan string, lanes*len(reqs))
	for lane := 0; lane < lanes; lane++ {
		for i := range reqs {
			wg.Add(1)
			go func(lane, i int) {
				defer wg.Done()
				got, err := json.Marshal(mustPlace(t, s, reqs[i]))
				if err != nil {
					errs <- err.Error()
					return
				}
				if string(got) != string(want[i]) {
					errs <- fmt.Sprintf("lane %d req %d diverged:\n got %s\nwant %s", lane, i, got, want[i])
				}
			}(lane, i)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestWhatIfRoundTrip: scoring the placement a search returned reproduces
// the search's own numbers.
func TestWhatIfRoundTrip(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	placed := mustPlace(t, s, PlaceRequest{Apps: fourApps()})
	wi, status, err := s.WhatIf(WhatIfRequest{ID: "wi1", Placement: placed.Placement})
	if err != nil {
		t.Fatalf("WhatIf: status %d: %v", status, err)
	}
	if wi.Endpoint != "whatif" || wi.ID != "wi1" {
		t.Errorf("identity = %q/%q", wi.ID, wi.Endpoint)
	}
	if wi.Objective != placed.Objective {
		t.Errorf("whatif objective %x, place %x", wi.Objective, placed.Objective)
	}
	if !reflect.DeepEqual(wi.Predicted, placed.Predicted) {
		t.Errorf("whatif predictions %v, place %v", wi.Predicted, placed.Predicted)
	}
	if wi.Evaluations != 1 {
		t.Errorf("whatif evaluations = %d, want 1", wi.Evaluations)
	}
}

// TestRequestErrors maps the failure modes to statuses.
func TestRequestErrors(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	cases := []struct {
		name   string
		req    PlaceRequest
		status int
	}{
		{"no apps", PlaceRequest{}, http.StatusBadRequest},
		{"unknown app", PlaceRequest{Apps: []AppDemand{{App: "ghost", Units: 1}}}, http.StatusBadRequest},
		{"qos without bound", PlaceRequest{Apps: fourApps(), QoSApp: "sens"}, http.StatusBadRequest},
		{"qos app not requested", PlaceRequest{
			Apps: []AppDemand{{App: "quiet", Units: 1}}, QoSApp: "sens", QoSMax: 1.5,
		}, http.StatusBadRequest},
		{"over capacity", PlaceRequest{Apps: []AppDemand{{App: "quiet", Units: 99}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, status, err := s.Place(tc.req)
			if err == nil {
				t.Fatal("want error")
			}
			if status != tc.status {
				t.Errorf("status = %d, want %d", status, tc.status)
			}
		})
	}
}

// TestNotReadyBeforeBackend: both endpoints answer 503 until SetBackend.
func TestNotReadyBeforeBackend(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := New(Config{NumHosts: 4, SlotsPerHost: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Ready() {
		t.Error("ready before backend")
	}
	if _, status, err := s.Place(PlaceRequest{Apps: []AppDemand{{App: "a", Units: 1}}}); err == nil || status != http.StatusServiceUnavailable {
		t.Errorf("place before backend: status %d err %v", status, err)
	}
	if _, status, err := s.WhatIf(WhatIfRequest{Placement: [][]string{{"a", ""}, {"", ""}, {"", ""}, {"", ""}}}); err == nil || status != http.StatusServiceUnavailable {
		t.Errorf("whatif before backend: status %d err %v", status, err)
	}
	s.SetBackend(testBackend())
	if !s.Ready() {
		t.Error("not ready after backend")
	}
}

// TestQueueFullRejects fills the admission queue behind a gated backend
// and checks the overflow request is refused with 429, then drains.
func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	cfg := Config{
		NumHosts: 8, SlotsPerHost: 2, Seed: 1,
		Iterations: 2, Restarts: 1,
		QueueDepth: 1, MaxBatch: 1, Workers: 1,
		Telemetry: reg,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := testBackend()
	for app, p := range b.Predictors {
		b.Predictors[app] = gatePred{p, gate}
	}
	s.SetBackend(b)

	req := PlaceRequest{Apps: []AppDemand{{App: "quiet", Units: 2}}}
	results := make(chan int, 2)
	// First request: dequeued into a batch, blocked on the gate.
	go func() { _, st, _ := s.Place(req); results <- st }()
	waitCounter(t, reg, MetricBatches, 1)
	// Second request: sits in the queue.
	go func() { _, st, _ := s.Place(req); results <- st }()
	waitGauge(t, reg, MetricQueueDepth, 1)
	// Third request: queue full — rejected immediately.
	_, status, err := s.Place(req)
	if err == nil || status != http.StatusTooManyRequests {
		t.Errorf("overflow: status %d err %v", status, err)
	}
	if got := reg.Counter(MetricRejected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRejected, got)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if st := <-results; st != http.StatusOK {
			t.Errorf("queued request %d: status %d", i, st)
		}
	}
}

func waitCounter(t *testing.T, reg *telemetry.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d (at %d)", name, want, reg.Counter(name).Value())
		}
		time.Sleep(time.Millisecond)
	}
}

func waitGauge(t *testing.T, reg *telemetry.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %v (at %v)", name, want, reg.Gauge(name).Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseRejectsQueued: Close drains the queue with 503s and further
// admissions refuse.
func TestCloseRejectsQueued(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	s.Close()
	_, status, err := s.Place(PlaceRequest{Apps: fourApps()})
	if err == nil || status != http.StatusServiceUnavailable {
		t.Errorf("after close: status %d err %v", status, err)
	}
	s.Close() // idempotent
}

// TestSpanTreePerRequest: one placement produces the admit → wait →
// search → respond causal tree under a serve.place root carrying the
// request ID.
func TestSpanTreePerRequest(t *testing.T) {
	s, _, tr := newTestService(t, nil)
	mustPlace(t, s, PlaceRequest{ID: "traced-1", Apps: fourApps()})

	spans := tr.Spans()
	var root telemetry.SpanRecord
	byName := map[string]telemetry.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.Name == "serve.place" {
			root = sp
		}
	}
	if root.ID == 0 {
		t.Fatalf("no serve.place root among %d spans", len(spans))
	}
	if root.Request != "traced-1" {
		t.Errorf("root request = %q", root.Request)
	}
	for _, stage := range []string{"admit", "wait", "search", "respond"} {
		sp, ok := byName[stage]
		if !ok {
			t.Errorf("missing %s span", stage)
			continue
		}
		if sp.ParentID != root.ID {
			t.Errorf("%s parent = %d, want root %d", stage, sp.ParentID, root.ID)
		}
		if sp.Request != "traced-1" {
			t.Errorf("%s request = %q", stage, sp.Request)
		}
	}
	if byName["search"].SimSeconds <= 0 {
		t.Error("search span carries no simulated service time")
	}
}

// TestMetricsAndQuantiles: the serve_* family is populated after traffic,
// including the interpolated latency percentile gauges.
func TestMetricsAndQuantiles(t *testing.T) {
	s, reg, _ := newTestService(t, nil)
	for i := 0; i < 3; i++ {
		mustPlace(t, s, PlaceRequest{Apps: fourApps(), Seed: int64(i + 1)})
	}
	snap := reg.Snapshot()
	if got := snap.Counters[telemetry.Label(MetricRequests, "endpoint", "place")]; got != 3 {
		t.Errorf("place requests = %d, want 3", got)
	}
	if got := snap.Counters[MetricBatches]; got == 0 {
		t.Error("no batches counted")
	}
	if snap.Counters[MetricCacheMisses] == 0 {
		t.Error("shared cache misses not accounted")
	}
	// The combine memo sits under every search the service ran; its
	// traffic was previously invisible to the serve_* family.
	if snap.Counters[MetricCombineMisses] == 0 {
		t.Error("combine-memo misses not accounted")
	}
	if snap.Counters[MetricCombineHits] == 0 {
		t.Error("combine-memo hits not accounted")
	}
	for _, h := range []string{HistQueue, HistService, HistE2E} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s empty", h)
		}
		for _, suffix := range []string{"_p50", "_p95", "_p99"} {
			v, ok := snap.Gauges[h+suffix]
			if !ok {
				t.Errorf("missing quantile gauge %s%s", h, suffix)
				continue
			}
			if v < 0 {
				t.Errorf("%s%s = %v", h, suffix, v)
			}
		}
	}
	p50, p99 := snap.Gauges[HistE2E+"_p50"], snap.Gauges[HistE2E+"_p99"]
	if p50 > p99 {
		t.Errorf("e2e p50 %v above p99 %v", p50, p99)
	}
}

// TestSLOFeedAndBreach: with a breach-on-everything SLO wired in, serving
// traffic raises the burn-rate gauge and publishes slo_breach events.
func TestSLOFeedAndBreach(t *testing.T) {
	bus := obs.NewBus(64)
	var tracker *obs.SLOTracker
	s, reg, _ := newTestService(t, func(c *Config) {
		var err error
		tracker, err = obs.NewSLOTracker(obs.SLOConfig{
			TargetSeconds: 1e-9, Budget: 0.05, Window: 16, MinRequests: 1, Cooldown: 0,
		}, c.Telemetry, bus)
		if err != nil {
			t.Fatal(err)
		}
		c.SLO = tracker
	})
	ch, cancel := bus.Subscribe()
	defer cancel()
	mustPlace(t, s, PlaceRequest{Apps: fourApps()})

	if burn := reg.Gauge(obs.SLOMetricBurnRate).Value(); burn <= 0 {
		t.Errorf("burn rate = %v, want > 0", burn)
	}
	select {
	case ev := <-ch:
		if ev.Type != obs.EventSLOBreach {
			t.Errorf("event type = %q", ev.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no slo_breach event published")
	}
	if snap := tracker.Snapshot(); snap.Requests == 0 || snap.Breaches == 0 {
		t.Errorf("tracker snapshot = %+v", snap)
	}
}
