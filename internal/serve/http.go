package serve

import (
	"encoding/json"
	"net/http"
)

// maxBodyBytes bounds request bodies; placement requests are tiny.
const maxBodyBytes = 1 << 20

// errorBody is the JSON error envelope both endpoints use.
type errorBody struct {
	Error string `json:"error"`
}

// Routes returns the handlers to mount on the observability mux
// (obs.Options.Routes):
//
//	POST /api/place     run the placement search (batched admission)
//	POST /api/whatif    score one concrete placement
//
// Responses carry the request ID in the X-Request-ID header, matching the
// Request field of the spans the call produced.
func (s *Service) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		"POST /api/place":  http.HandlerFunc(s.handlePlace),
		"POST /api/whatif": http.HandlerFunc(s.handleWhatIf),
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeResponse(w http.ResponseWriter, resp Response, status int, err error) {
	if resp.ID != "" {
		w.Header().Set("X-Request-ID", resp.ID)
	}
	if err != nil {
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *Service) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The client may also propagate an ID via header; the body wins.
	if req.ID == "" {
		req.ID = r.Header.Get("X-Request-ID")
	}
	resp, status, err := s.Place(req)
	if err != nil {
		s.log.Debug("place failed", "id", req.requestID(), "status", status, "err", err)
		w.Header().Set("X-Request-ID", req.requestID())
	}
	writeResponse(w, resp, status, err)
}

func (s *Service) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ID == "" {
		req.ID = r.Header.Get("X-Request-ID")
	}
	resp, status, err := s.WhatIf(req)
	if err != nil {
		s.log.Debug("whatif failed", "id", req.ID, "status", status, "err", err)
		if req.ID != "" {
			w.Header().Set("X-Request-ID", req.ID)
		}
	}
	writeResponse(w, resp, status, err)
}
