// Package serve turns the placement engine into a service: an admission
// queue batches concurrent placement requests and executes each batch with
// the serial-plan / parallel-execute / ordered-merge discipline the
// measurement engine established, so throughput scales with cores while
// every response stays a pure function of its request content. Request
// observability rides on the existing planes: a propagated request ID and
// a causal span tree per request in the telemetry tracer, per-stage
// latency histograms with interpolated p50/p95/p99 gauges, and a latency
// SLO tracker publishing burn-rate breaches on the event bus.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/cluster"
)

// AppDemand asks for one application at a unit count.
type AppDemand struct {
	App   string `json:"app"`
	Units int    `json:"units"`
}

// PlaceRequest is the body of POST /api/place: run the interference-aware
// placement search for the listed applications on the service's cluster.
// Every field besides Apps is optional. The response is a deterministic
// function of this content — two identical requests always produce
// bit-identical responses, regardless of arrival order or batching.
type PlaceRequest struct {
	// ID names the request in spans and logs; derived from the content
	// hash when empty.
	ID   string      `json:"id,omitempty"`
	Apps []AppDemand `json:"apps"`
	// QoSApp/QoSMax optionally constrain one application's predicted
	// normalized time (placement.QoS).
	QoSApp string  `json:"qos_app,omitempty"`
	QoSMax float64 `json:"qos_max,omitempty"`
	// Seed fixes the search seed; 0 derives one from the content hash.
	Seed int64 `json:"seed,omitempty"`
	// Iterations/Restarts override the service's search defaults.
	Iterations int `json:"iterations,omitempty"`
	Restarts   int `json:"restarts,omitempty"`
}

// WhatIfRequest is the body of POST /api/whatif: score one concrete
// placement (host-by-slot application grid, "" = empty slot) under the
// service's model without searching.
type WhatIfRequest struct {
	ID        string     `json:"id,omitempty"`
	Placement [][]string `json:"placement"`
	QoSApp    string     `json:"qos_app,omitempty"`
	QoSMax    float64    `json:"qos_max,omitempty"`
}

// Response answers both endpoints. SimServiceSeconds is the modeled
// service cost (a pure function of the evaluation count), not wall time —
// wall-clock latency lives in the serve_* histograms and the SLO tracker,
// never in the response, so responses stay byte-reproducible.
type Response struct {
	ID                string             `json:"id"`
	Endpoint          string             `json:"endpoint"`
	Seed              int64              `json:"seed"`
	Placement         [][]string         `json:"placement"`
	Objective         float64            `json:"objective"`
	Predicted         map[string]float64 `json:"predicted"`
	QoSSatisfied      bool               `json:"qos_satisfied"`
	Evaluations       int                `json:"evaluations"`
	SimServiceSeconds float64            `json:"sim_service_seconds"`
}

// validate rejects malformed placement requests before admission.
func (r PlaceRequest) validate() error {
	if len(r.Apps) == 0 {
		return errors.New("serve: no apps requested")
	}
	seen := map[string]bool{}
	for _, a := range r.Apps {
		if a.App == "" || a.Units <= 0 {
			return fmt.Errorf("serve: bad demand %+v", a)
		}
		if seen[a.App] {
			return fmt.Errorf("serve: duplicate demand for %q", a.App)
		}
		seen[a.App] = true
	}
	if (r.QoSApp == "") != (r.QoSMax == 0) {
		return errors.New("serve: qos_app and qos_max must be set together")
	}
	if r.QoSApp != "" && !seen[r.QoSApp] {
		return fmt.Errorf("serve: qos app %q not among requested apps", r.QoSApp)
	}
	if r.Iterations < 0 || r.Restarts < 0 {
		return errors.New("serve: negative search tuning")
	}
	return nil
}

// hash folds the request content into an FNV-64a digest — the basis for
// the derived request ID and search seed, so identical content means an
// identical search no matter when or in which batch it runs.
func (r PlaceRequest) hash() uint64 {
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	write("place")
	for _, a := range r.Apps {
		write(a.App, strconv.Itoa(a.Units))
	}
	write(r.QoSApp, strconv.FormatFloat(r.QoSMax, 'g', -1, 64),
		strconv.FormatInt(r.Seed, 10), strconv.Itoa(r.Iterations), strconv.Itoa(r.Restarts))
	return h.Sum64()
}

// requestID returns the explicit ID or one derived from the content hash.
func (r PlaceRequest) requestID() string {
	if r.ID != "" {
		return r.ID
	}
	return fmt.Sprintf("req-%016x", r.hash())
}

// searchSeed mixes the service's base seed with the request: an explicit
// request seed wins, otherwise the content hash decides — never arrival
// order, so batching cannot perturb a response.
func (r PlaceRequest) searchSeed(base int64) int64 {
	if r.Seed != 0 {
		return r.Seed
	}
	return base*1_000_003 + int64(r.hash()%(1<<62))
}

// encodePlacement materializes a placement as its host-by-slot grid.
func encodePlacement(p *cluster.Placement) [][]string {
	out := make([][]string, p.NumHosts)
	for h := 0; h < p.NumHosts; h++ {
		row := make([]string, p.HostSlots)
		for s := 0; s < p.HostSlots; s++ {
			row[s] = p.At(h, s)
		}
		out[h] = row
	}
	return out
}

// decodePlacement rebuilds a cluster.Placement from a grid, enforcing the
// service's cluster dimensions and the co-location rule via Set.
func decodePlacement(grid [][]string, numHosts, slotsPerHost, appsLimit int) (*cluster.Placement, error) {
	if len(grid) != numHosts {
		return nil, fmt.Errorf("serve: placement has %d hosts, cluster has %d", len(grid), numHosts)
	}
	p, err := cluster.NewPlacementLimit(numHosts, slotsPerHost, appsLimit)
	if err != nil {
		return nil, err
	}
	for h, row := range grid {
		if len(row) != slotsPerHost {
			return nil, fmt.Errorf("serve: host %d has %d slots, cluster has %d", h, len(row), slotsPerHost)
		}
		for s, app := range row {
			if app == "" {
				continue
			}
			if err := p.Set(h, s, app); err != nil {
				return nil, fmt.Errorf("serve: host %d slot %d: %w", h, s, err)
			}
		}
	}
	return p, nil
}

// demands converts the request's app list to cluster demands.
func (r PlaceRequest) demands() []cluster.Demand {
	out := make([]cluster.Demand, len(r.Apps))
	for i, a := range r.Apps {
		out[i] = cluster.Demand{App: a.App, Units: a.Units}
	}
	return out
}
