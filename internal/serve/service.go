package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/telemetry"
)

// Metric names exported by the service.
const (
	// MetricRequests counts completed requests, labeled by endpoint.
	MetricRequests = "serve_requests_total"
	// MetricRejected counts admissions refused on a full queue.
	MetricRejected = "serve_rejected_total"
	// MetricErrors counts requests that failed validation or search.
	MetricErrors = "serve_errors_total"
	// MetricBatches counts dispatcher batches executed.
	MetricBatches = "serve_batches_total"
	// MetricBatchSize is the size of the last executed batch.
	MetricBatchSize = "serve_batch_size"
	// MetricQueueDepth is the current admission-queue occupancy.
	MetricQueueDepth = "serve_queue_depth"
	// MetricCacheHits/Misses is the shared prediction-cache traffic
	// attributable to serving (deltas accumulated per batch).
	MetricCacheHits   = "serve_pred_cache_hits_total"
	MetricCacheMisses = "serve_pred_cache_misses_total"
	// MetricCombineHits/Misses is the combine-memo traffic of the same
	// shared cache (the co-runner score -> combined-pressure layer).
	MetricCombineHits   = "serve_pred_cache_combine_hits_total"
	MetricCombineMisses = "serve_pred_cache_combine_misses_total"

	// Per-stage latency histograms; each also exports interpolated
	// <name>_p50/_p95/_p99 gauges refreshed as requests complete.
	HistQueue   = "serve_queue_seconds"
	HistService = "serve_service_seconds"
	HistE2E     = "serve_e2e_seconds"
)

// Modeled service cost: the deterministic per-request "simulated" time
// reported in responses (base admission overhead plus a per-evaluation
// cost), a pure function of the evaluation count. The load generator's
// virtual-time queueing model consumes it, keeping its report independent
// of wall-clock jitter.
const (
	SimCostBase    = 0.001 // seconds per request
	SimCostPerEval = 1e-6  // seconds per model evaluation
)

// latencyBuckets covers 0.5ms to ~4s in doubling steps.
func latencyBuckets() []float64 { return telemetry.ExpBuckets(0.0005, 2, 14) }

// Config tunes a Service.
type Config struct {
	// Cluster dimensions every request is placed on.
	NumHosts         int
	SlotsPerHost     int
	AppsPerHostLimit int
	// DownHosts lists crashed hosts the search must avoid.
	DownHosts []int
	// Seed is the base seed mixed into per-request search seeds.
	Seed int64
	// Iterations/Restarts are the search defaults when a request does
	// not override them (600 / 1).
	Iterations int
	Restarts   int
	// QueueDepth bounds the admission queue (default 64); a full queue
	// rejects with 429 rather than building unbounded backlog.
	QueueDepth int
	// MaxBatch bounds how many queued requests one dispatcher batch
	// executes together (default 8).
	MaxBatch int
	// Workers bounds batch parallelism (default GOMAXPROCS, capped at
	// MaxBatch).
	Workers int

	// Telemetry receives the serve_* metric family; Tracer the per-
	// request span trees; SLO each request's end-to-end wall latency.
	// All optional.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	SLO       *obs.SLOTracker
	Logger    *slog.Logger
}

// Backend is the model state requests are served against: one predictor
// and bubble score per application, typically built by profiling at
// daemon startup.
type Backend struct {
	Predictors map[string]core.Predictor
	Scores     map[string]float64
}

// Service is the placement-as-a-service engine. Construct with New, arm
// with SetBackend once models exist, and mount Routes on the obs server.
type Service struct {
	cfg    Config
	log    *slog.Logger
	shared *core.SharedPredictionCache

	mu     sync.RWMutex // guards preds/scores (the armed backend)
	preds  map[string]core.Predictor
	scores map[string]float64

	closeMu sync.RWMutex
	closed  bool
	queue   chan *pending
	stop    chan struct{}
	done    chan struct{}

	reqPlace, reqWhatIf, rejected, errs *telemetry.Counter
	batches, cacheHits, cacheMisses     *telemetry.Counter
	combineHits, combineMisses          *telemetry.Counter
	batchSize, queueDepth               *telemetry.Gauge
	queueHist, serviceHist, e2eHist     *telemetry.Histogram

	lastHits, lastMisses       uint64 // shared-cache stats at the last batch
	lastCombHits, lastCombMiss uint64 // combine-memo stats at the last batch
	statsMu                    sync.Mutex
}

// pending is one admitted placement request waiting for its batch.
type pending struct {
	req     PlaceRequest
	id      string
	root    *telemetry.Span
	waitSp  *telemetry.Span
	started time.Time // admission (root span start)
	enq     time.Time // enqueue
	resp    Response
	status  int
	err     error
	done    chan struct{}
}

// New builds and starts a Service (its dispatcher runs until Close).
func New(cfg Config) (*Service, error) {
	if cfg.NumHosts <= 0 || cfg.SlotsPerHost <= 0 {
		return nil, errors.New("serve: non-positive cluster dimensions")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 600
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.MaxBatch {
		cfg.Workers = cfg.MaxBatch
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Nop()
	}
	s := &Service{
		cfg:    cfg,
		log:    log,
		shared: core.NewSharedPredictionCache(),
		queue:  make(chan *pending, cfg.QueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if reg := cfg.Telemetry; reg != nil {
		s.reqPlace = reg.Counter(telemetry.Label(MetricRequests, "endpoint", "place"))
		s.reqWhatIf = reg.Counter(telemetry.Label(MetricRequests, "endpoint", "whatif"))
		s.rejected = reg.Counter(MetricRejected)
		s.errs = reg.Counter(MetricErrors)
		s.batches = reg.Counter(MetricBatches)
		s.cacheHits = reg.Counter(MetricCacheHits)
		s.cacheMisses = reg.Counter(MetricCacheMisses)
		s.combineHits = reg.Counter(MetricCombineHits)
		s.combineMisses = reg.Counter(MetricCombineMisses)
		s.batchSize = reg.Gauge(MetricBatchSize)
		s.queueDepth = reg.Gauge(MetricQueueDepth)
		s.queueHist = reg.Histogram(HistQueue, latencyBuckets())
		s.serviceHist = reg.Histogram(HistService, latencyBuckets())
		s.e2eHist = reg.Histogram(HistE2E, latencyBuckets())
		reg.SetHelp(MetricRequests, "Placement-service requests completed, by endpoint.")
		reg.SetHelp(MetricRejected, "Requests refused on a full admission queue.")
		reg.SetHelp(MetricErrors, "Requests failing validation or search.")
		reg.SetHelp(MetricBatches, "Dispatcher batches executed.")
		reg.SetHelp(MetricBatchSize, "Size of the last executed batch.")
		reg.SetHelp(MetricQueueDepth, "Admission-queue occupancy.")
		reg.SetHelp(MetricCacheHits, "Shared prediction-cache hits accumulated by serving.")
		reg.SetHelp(MetricCacheMisses, "Shared prediction-cache misses accumulated by serving.")
		reg.SetHelp(MetricCombineHits, "Shared-cache combine-memo hits accumulated by serving.")
		reg.SetHelp(MetricCombineMisses, "Shared-cache combine-memo misses accumulated by serving.")
		reg.SetHelp(HistQueue, "Seconds spent queued before batch execution.")
		reg.SetHelp(HistService, "Seconds spent executing the placement search.")
		reg.SetHelp(HistE2E, "End-to-end seconds from admission to response.")
	}
	go s.dispatch()
	return s, nil
}

// SetBackend arms the service with models; until then every request is
// answered 503. Predictors are wrapped by the service's shared prediction
// cache, so repeated pressure points across requests skip recomputation.
func (s *Service) SetBackend(b Backend) {
	wrapped := s.shared.WrapAll(b.Predictors)
	scores := make(map[string]float64, len(b.Scores))
	for k, v := range b.Scores {
		scores[k] = v
	}
	s.mu.Lock()
	s.preds = wrapped
	s.scores = scores
	s.mu.Unlock()
}

// Ready reports whether a backend is armed.
func (s *Service) Ready() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.preds != nil
}

// CacheStats reports the shared prediction cache's lifetime traffic.
func (s *Service) CacheStats() (hits, misses uint64) { return s.shared.Stats() }

// Close stops the dispatcher and rejects anything still queued.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.stop)
	<-s.done
	for {
		select {
		case p := <-s.queue:
			s.reject(p, http.StatusServiceUnavailable, errors.New("serve: service closed"))
		default:
			return
		}
	}
}

// Place admits one placement request, waits for its batch to execute, and
// returns the response with the HTTP status it maps to. It is the
// programmatic entry the HTTP handler and the benchmarks share.
func (s *Service) Place(req PlaceRequest) (Response, int, error) {
	id := req.requestID()
	root := s.cfg.Tracer.StartSpan("serve.place").SetRequest(id)
	started := time.Now()

	admit := root.StartChild("admit")
	if err := req.validate(); err != nil {
		admit.End()
		root.End()
		s.countError()
		return Response{}, http.StatusBadRequest, err
	}
	if err := s.checkBackend(req.Apps); err != nil {
		admit.End()
		root.End()
		s.countError()
		status := http.StatusServiceUnavailable
		if !errors.Is(err, errNotReady) {
			status = http.StatusBadRequest
		}
		return Response{}, status, err
	}
	p := &pending{req: req, id: id, root: root, started: started, done: make(chan struct{})}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		admit.End()
		s.reject(p, http.StatusServiceUnavailable, errors.New("serve: service closed"))
		<-p.done
		return p.resp, p.status, p.err
	}
	p.enq = time.Now()
	p.waitSp = root.StartChild("wait")
	select {
	case s.queue <- p:
		s.closeMu.RUnlock()
		admit.End()
		if s.queueDepth != nil {
			s.queueDepth.Set(float64(len(s.queue)))
		}
	default:
		s.closeMu.RUnlock()
		admit.End()
		if s.rejected != nil {
			s.rejected.Inc()
		}
		s.reject(p, http.StatusTooManyRequests, errors.New("serve: admission queue full"))
	}
	<-p.done
	return p.resp, p.status, p.err
}

// reject finalizes a pending request without executing it.
func (s *Service) reject(p *pending, status int, err error) {
	p.status = status
	p.err = err
	p.waitSp.End()
	p.root.End()
	close(p.done)
}

func (s *Service) countError() {
	if s.errs != nil {
		s.errs.Inc()
	}
}

var errNotReady = errors.New("serve: no backend armed yet")

// checkBackend verifies every requested app has a model.
func (s *Service) checkBackend(apps []AppDemand) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.preds == nil {
		return errNotReady
	}
	for _, a := range apps {
		if _, ok := s.preds[a.App]; !ok {
			return fmt.Errorf("serve: no model for app %q", a.App)
		}
		if _, ok := s.scores[a.App]; !ok {
			return fmt.Errorf("serve: no bubble score for app %q", a.App)
		}
	}
	return nil
}

// backendFor snapshots the predictor/score subset a request needs.
func (s *Service) backendFor(apps []AppDemand) (map[string]core.Predictor, map[string]float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	preds := make(map[string]core.Predictor, len(apps))
	scores := make(map[string]float64, len(apps))
	for _, a := range apps {
		preds[a.App] = s.preds[a.App]
		scores[a.App] = s.scores[a.App]
	}
	return preds, scores
}

// dispatch is the admission loop: it blocks for the next request, drains
// whatever else is already queued (up to MaxBatch) into one batch — the
// serial plan, in admission order — and executes the batch.
func (s *Service) dispatch() {
	defer close(s.done)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			return
		}
		batch := []*pending{first}
		for len(batch) < s.cfg.MaxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			default:
				goto run
			}
		}
	run:
		if s.queueDepth != nil {
			s.queueDepth.Set(float64(len(s.queue)))
		}
		s.runBatch(batch)
	}
}

// runBatch executes one admission batch with the measurement engine's
// discipline: the plan is the admission order, execution is a parallel
// worker pool claiming items in plan order, and completion is an ordered
// merge — so observable side effects (metrics, SLO, span ends, response
// delivery) happen in admission order, while each response itself depends
// only on its request.
func (s *Service) runBatch(batch []*pending) {
	if s.batches != nil {
		s.batches.Inc()
		s.batchSize.Set(float64(len(batch)))
	}
	workers := s.cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for _, p := range batch {
			s.executeOne(p)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					s.executeOne(batch[i])
				}
			}()
		}
		wg.Wait()
	}

	// Ordered merge: finalize in admission order.
	for _, p := range batch {
		respond := p.root.StartChild("respond")
		e2e := time.Since(p.started).Seconds()
		if s.e2eHist != nil {
			s.e2eHist.Observe(e2e)
		}
		if p.err == nil && s.reqPlace != nil {
			s.reqPlace.Inc()
		}
		if p.err != nil {
			s.countError()
		}
		s.cfg.SLO.Observe(e2e)
		respond.End()
		p.root.End()
		close(p.done)
	}
	s.accountCache()
	s.refreshQuantiles()
}

// executeOne runs the search for one admitted request. Called from batch
// workers; it records the queue-wait and search stages but leaves
// admission-ordered side effects to the merge.
func (s *Service) executeOne(p *pending) {
	p.waitSp.End()
	if s.queueHist != nil {
		s.queueHist.Observe(time.Since(p.enq).Seconds())
	}
	search := p.root.StartChild("search")
	t0 := time.Now()
	resp, err := s.search(p.req, p.id)
	search.SetSimSeconds(resp.SimServiceSeconds)
	search.End()
	if s.serviceHist != nil {
		s.serviceHist.Observe(time.Since(t0).Seconds())
	}
	if err != nil {
		p.status = http.StatusBadRequest
		p.err = err
		return
	}
	p.resp = resp
	p.status = http.StatusOK
}

// search runs the placement search for a request — a pure function of the
// request content and the armed backend.
func (s *Service) search(req PlaceRequest, id string) (Response, error) {
	preds, scores := s.backendFor(req.Apps)
	preq := placement.Request{
		NumHosts:         s.cfg.NumHosts,
		SlotsPerHost:     s.cfg.SlotsPerHost,
		AppsPerHostLimit: s.cfg.AppsPerHostLimit,
		Demands:          req.demands(),
		Predictors:       preds,
		Scores:           scores,
		DownHosts:        s.cfg.DownHosts,
	}
	pcfg := placement.Config{
		Iterations: s.cfg.Iterations,
		Restarts:   s.cfg.Restarts,
		Seed:       req.searchSeed(s.cfg.Seed),
	}
	if req.Iterations > 0 {
		pcfg.Iterations = req.Iterations
	}
	if req.Restarts > 0 {
		pcfg.Restarts = req.Restarts
	}
	if req.QoSApp != "" {
		pcfg.QoS = &placement.QoS{App: req.QoSApp, MaxNormalized: req.QoSMax}
	}
	res, err := placement.Search(preq, pcfg)
	if err != nil {
		return Response{}, err
	}
	// The combine memo lives in the per-search caches (not the shared
	// tier), so its traffic is accounted from the search result.
	if s.combineHits != nil {
		s.combineHits.Add(res.CombineHits)
		s.combineMisses.Add(res.CombineMisses)
	}
	return Response{
		ID:                id,
		Endpoint:          "place",
		Seed:              pcfg.Seed,
		Placement:         encodePlacement(res.Placement),
		Objective:         res.Objective,
		Predicted:         res.Predicted,
		QoSSatisfied:      res.QoSSatisfied,
		Evaluations:       res.Evaluations,
		SimServiceSeconds: SimCostBase + SimCostPerEval*float64(res.Evaluations),
	}, nil
}

// WhatIf scores one concrete placement inline (no queue — a single model
// evaluation needs no batching) with the same observability: span tree,
// latency histograms, SLO feed.
func (s *Service) WhatIf(req WhatIfRequest) (Response, int, error) {
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("whatif-%016x", whatIfHash(req))
	}
	root := s.cfg.Tracer.StartSpan("serve.whatif").SetRequest(id)
	started := time.Now()
	finish := func(status int, err error) (Response, int, error) {
		e2e := time.Since(started).Seconds()
		if s.e2eHist != nil {
			s.e2eHist.Observe(e2e)
		}
		s.cfg.SLO.Observe(e2e)
		root.End()
		if err != nil {
			s.countError()
			return Response{}, status, err
		}
		return Response{}, status, nil
	}

	admit := root.StartChild("admit")
	s.mu.RLock()
	ready := s.preds != nil
	s.mu.RUnlock()
	if !ready {
		admit.End()
		return finish(http.StatusServiceUnavailable, errNotReady)
	}
	if (req.QoSApp == "") != (req.QoSMax == 0) {
		admit.End()
		return finish(http.StatusBadRequest, errors.New("serve: qos_app and qos_max must be set together"))
	}
	p, err := decodePlacement(req.Placement, s.cfg.NumHosts, s.cfg.SlotsPerHost, s.cfg.AppsPerHostLimit)
	if err != nil {
		admit.End()
		return finish(http.StatusBadRequest, err)
	}
	apps := p.Apps()
	if len(apps) == 0 {
		admit.End()
		return finish(http.StatusBadRequest, errors.New("serve: empty placement"))
	}
	demands := make([]AppDemand, len(apps))
	for i, a := range apps {
		demands[i] = AppDemand{App: a, Units: p.UnitsOf(a)}
	}
	if err := s.checkBackend(demands); err != nil {
		admit.End()
		return finish(http.StatusBadRequest, err)
	}
	admit.End()

	predictSp := root.StartChild("predict")
	t0 := time.Now()
	preds, scores := s.backendFor(demands)
	var qos *placement.QoS
	if req.QoSApp != "" {
		qos = &placement.QoS{App: req.QoSApp, MaxNormalized: req.QoSMax}
	}
	ev, err := placement.Evaluate(p, placement.Request{
		NumHosts:         s.cfg.NumHosts,
		SlotsPerHost:     s.cfg.SlotsPerHost,
		AppsPerHostLimit: s.cfg.AppsPerHostLimit,
		Predictors:       preds,
		Scores:           scores,
	}, qos)
	predictSp.End()
	if s.serviceHist != nil {
		s.serviceHist.Observe(time.Since(t0).Seconds())
	}
	if err != nil {
		return finish(http.StatusBadRequest, err)
	}

	respond := root.StartChild("respond")
	resp := Response{
		ID:                id,
		Endpoint:          "whatif",
		Placement:         req.Placement,
		Objective:         ev.Objective,
		Predicted:         ev.Predicted,
		QoSSatisfied:      ev.QoSSatisfied,
		Evaluations:       ev.Evaluations,
		SimServiceSeconds: SimCostBase + SimCostPerEval*float64(ev.Evaluations),
	}
	respond.End()
	e2e := time.Since(started).Seconds()
	if s.e2eHist != nil {
		s.e2eHist.Observe(e2e)
	}
	s.cfg.SLO.Observe(e2e)
	if s.reqWhatIf != nil {
		s.reqWhatIf.Inc()
	}
	root.End()
	s.accountCache()
	s.refreshQuantiles()
	return resp, http.StatusOK, nil
}

// whatIfHash digests a what-if request for ID derivation.
func whatIfHash(req WhatIfRequest) uint64 {
	r := PlaceRequest{QoSApp: req.QoSApp, QoSMax: req.QoSMax}
	for h, row := range req.Placement {
		for s, app := range row {
			if app != "" {
				r.Apps = append(r.Apps, AppDemand{App: fmt.Sprintf("%d/%d/%s", h, s, app), Units: 1})
			}
		}
	}
	return r.hash()
}

// accountCache folds the shared cache's stats delta into the serve_*
// counters.
func (s *Service) accountCache() {
	if s.cacheHits == nil {
		return
	}
	hits, misses := s.shared.Stats()
	chits, cmisses := s.shared.CombineStats()
	s.statsMu.Lock()
	dh, dm := hits-s.lastHits, misses-s.lastMisses
	dch, dcm := chits-s.lastCombHits, cmisses-s.lastCombMiss
	s.lastHits, s.lastMisses = hits, misses
	s.lastCombHits, s.lastCombMiss = chits, cmisses
	s.statsMu.Unlock()
	s.cacheHits.Add(dh)
	s.cacheMisses.Add(dm)
	s.combineHits.Add(dch)
	s.combineMisses.Add(dcm)
}

// refreshQuantiles recomputes the interpolated latency percentiles for
// each serve_* histogram.
func (s *Service) refreshQuantiles() {
	if s.cfg.Telemetry == nil {
		return
	}
	for name, h := range map[string]*telemetry.Histogram{
		HistQueue: s.queueHist, HistService: s.serviceHist, HistE2E: s.e2eHist,
	} {
		snap := telemetry.HistogramSnapshot{Uppers: h.Uppers(), Counts: h.BucketCounts(), Count: h.Count()}
		if snap.Count == 0 {
			continue
		}
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"_p50", 0.5}, {"_p95", 0.95}, {"_p99", 0.99}} {
			s.cfg.Telemetry.Gauge(name + q.suffix).Set(snap.Quantile(q.q))
		}
	}
}
