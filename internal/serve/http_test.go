package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsServerFor mounts the service's routes on a real observability server
// — the exact wiring cmd/interfd uses.
func obsServerFor(t *testing.T, s *Service) *httptest.Server {
	t.Helper()
	srv := obs.New(obs.Options{Routes: s.Routes()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPPlaceAndWhatIf drives both endpoints through the obs mux and
// checks status, request-ID propagation, and the place→whatif round trip.
func TestHTTPPlaceAndWhatIf(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	ts := obsServerFor(t, s)

	resp, body := postJSON(t, ts.URL+"/api/place", PlaceRequest{ID: "http-1", Apps: fourApps()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "http-1" {
		t.Errorf("X-Request-ID = %q", got)
	}
	var placed Response
	if err := json.Unmarshal(body, &placed); err != nil {
		t.Fatalf("place response: %v", err)
	}
	if placed.ID != "http-1" || placed.Endpoint != "place" || placed.Objective <= 0 {
		t.Errorf("place response = %+v", placed)
	}

	resp2, body2 := postJSON(t, ts.URL+"/api/whatif", WhatIfRequest{ID: "http-2", Placement: placed.Placement})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("whatif status = %d: %s", resp2.StatusCode, body2)
	}
	var wi Response
	if err := json.Unmarshal(body2, &wi); err != nil {
		t.Fatal(err)
	}
	if wi.Objective != placed.Objective {
		t.Errorf("whatif objective %v, place %v", wi.Objective, placed.Objective)
	}
}

// TestHTTPSameBodySameBytes: the HTTP layer preserves response-level
// determinism — two posts of the same body return identical bytes.
func TestHTTPSameBodySameBytes(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	ts := obsServerFor(t, s)
	req := PlaceRequest{Apps: fourApps(), Seed: 7}
	_, first := postJSON(t, ts.URL+"/api/place", req)
	_, second := postJSON(t, ts.URL+"/api/place", req)
	if !bytes.Equal(first, second) {
		t.Errorf("same body produced different bytes:\n%s\nvs\n%s", first, second)
	}
}

// TestHTTPErrors: malformed JSON, bad requests, and method mismatches.
func TestHTTPErrors(t *testing.T) {
	s, _, _ := newTestService(t, nil)
	ts := obsServerFor(t, s)

	resp, err := http.Post(ts.URL+"/api/place", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d", resp.StatusCode)
	}

	resp2, body := postJSON(t, ts.URL+"/api/place", PlaceRequest{Apps: []AppDemand{{App: "ghost", Units: 1}}})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown app: status = %d", resp2.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("error envelope = %s", body)
	}

	getResp, err := http.Get(ts.URL + "/api/place")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status = %d", getResp.StatusCode)
	}
}

// TestHTTPHeaderRequestID: a header-propagated ID reaches the response
// when the body has none.
func TestHTTPHeaderRequestID(t *testing.T) {
	s, _, tr := newTestService(t, nil)
	ts := obsServerFor(t, s)

	b, _ := json.Marshal(PlaceRequest{Apps: fourApps()})
	req, err := http.NewRequest("POST", ts.URL+"/api/place", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "hdr-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var placed Response
	if err := json.NewDecoder(resp.Body).Decode(&placed); err != nil {
		t.Fatal(err)
	}
	if placed.ID != "hdr-9" {
		t.Errorf("response ID = %q, want hdr-9", placed.ID)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "hdr-9" {
		t.Errorf("X-Request-ID = %q", got)
	}
	found := false
	for _, sp := range tr.Spans() {
		if sp.Name == "serve.place" && sp.Request == "hdr-9" {
			found = true
		}
	}
	if !found {
		t.Error("no serve.place span tagged hdr-9")
	}
}
