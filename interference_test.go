package interference

import (
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	env, err := NewPrivateClusterEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	env.Reps = 2
	w, err := WorkloadByName("M.milc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBuildConfig()
	cfg.Samples = 10
	model, err := BuildModel(env, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.PredictPressures([]float64{6, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 1.2 {
		t.Errorf("one heavy interfering node should predict a jump, got %v", pred)
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(Workloads()) != 18 {
		t.Errorf("workloads = %d, want 18", len(Workloads()))
	}
	if len(DistributedWorkloads()) != 12 {
		t.Errorf("distributed = %d, want 12", len(DistributedWorkloads()))
	}
	if len(BatchWorkloads()) != 6 {
		t.Errorf("batch = %d, want 6", len(BatchWorkloads()))
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestPublicPlacementSearch(t *testing.T) {
	env, err := NewPrivateClusterEnv(2)
	if err != nil {
		t.Fatal(err)
	}
	env.Reps = 2
	cfg := DefaultBuildConfig()
	cfg.Samples = 10
	names := []string{"M.milc", "C.libq", "H.KM", "M.lmps"}
	preds := map[string]Predictor{}
	scores := map[string]float64{}
	demands := make([]Demand, 0, len(names))
	for _, n := range names {
		w, err := WorkloadByName(n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := BuildModel(env, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		preds[n] = m
		scores[n] = m.BubbleScore
		demands = append(demands, Demand{App: n, Units: 4})
	}
	req := PlacementRequest{
		NumHosts: 8, SlotsPerHost: 2,
		Demands: demands, Predictors: preds, Scores: scores,
	}
	pcfg := DefaultPlacementConfig(3)
	pcfg.Iterations = 500
	pcfg.QoS = &QoS{App: "M.milc", MaxNormalized: 1.25}
	res, err := SearchPlacement(req, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSSatisfied {
		t.Errorf("QoS should be satisfiable; predicted %v", res.Predicted["M.milc"])
	}
	outs, err := env.RunPlacement(res.Placement, map[string]Workload{
		"M.milc": mustWL(t, "M.milc"), "C.libq": mustWL(t, "C.libq"),
		"H.KM": mustWL(t, "H.KM"), "M.lmps": mustWL(t, "M.lmps"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs["M.milc"].Normalized > 1.35 {
		t.Errorf("actual QoS badly violated: %v", outs["M.milc"].Normalized)
	}
	rnd, err := RandomPlacements(req, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rnd) != 3 {
		t.Errorf("random placements = %d", len(rnd))
	}
}

func TestEC2EnvConstructor(t *testing.T) {
	env, err := NewEC2Env(1)
	if err != nil {
		t.Fatal(err)
	}
	if env.Cluster.NumHosts != 32 {
		t.Errorf("EC2 hosts = %d, want 32", env.Cluster.NumHosts)
	}
	if env.Background == nil {
		t.Error("EC2 env must carry background interference")
	}
	if PrivateCluster().NumHosts != 8 {
		t.Error("private cluster should have 8 hosts")
	}
}

func TestNewPlacementWrapper(t *testing.T) {
	p, err := NewPlacement(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Set(0, 0, "A"); err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) != "A" {
		t.Error("placement wrapper broken")
	}
}

func mustWL(t *testing.T, name string) Workload {
	t.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
