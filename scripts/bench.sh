#!/bin/sh
# bench.sh — run the repository benchmarks and record ns/op and allocs/op
# per benchmark in BENCH_telemetry.json at the repo root. Used to track
# the overhead of the telemetry layer across changes: rerun after
# instrumentation work and compare against the committed numbers (the
# budget is 5%; alloc-free hot paths must stay alloc-free).
#
# Usage:
#   scripts/bench.sh                # quick pass (one iteration each)
#   BENCHTIME=2s scripts/bench.sh   # steadier numbers
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1x}"
out="${BENCH_OUT:-BENCH_telemetry.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" -benchmem -timeout 30m . | tee "$raw"

awk -v benchtime="$benchtime" '
  /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip the GOMAXPROCS suffix
    names[++n] = name
    iters[name] = $2
    nsop[name] = $3
    if ($8 == "allocs/op") allocs[name] = $7
  }
  END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", benchtime
    for (i = 1; i <= n; i++) {
      name = names[i]
      printf "    \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", \
        name, iters[name], nsop[name]
      if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name]
      printf "}%s\n", (i < n ? "," : "")
    }
    printf "  }\n}\n"
  }
' "$raw" > "$out"

echo "wrote $out"
