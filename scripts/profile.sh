#!/bin/sh
# profile.sh — capture CPU and heap profiles from the fleet-scale
# placement search benchmark. The search phases are tagged with pprof
# labels (placement_phase = spread | cells | exchange), so the CPU
# profile can be broken down per phase:
#
#   go tool pprof -tags profiles/fleetsearch.cpu
#   go tool pprof -top -tagfocus placement_phase=exchange profiles/fleetsearch.cpu
#
# Usage:
#   scripts/profile.sh                    # BenchmarkFleetSearch, 10 iterations
#   BENCH=BenchmarkFleetSearchXL scripts/profile.sh
#   BENCHTIME=30x PROFILE_DIR=/tmp/prof scripts/profile.sh
set -eu

cd "$(dirname "$0")/.."
bench="${BENCH:-BenchmarkFleetSearch}"
benchtime="${BENCHTIME:-10x}"
dir="${PROFILE_DIR:-profiles}"
mkdir -p "$dir"

go test -run '^$' -bench "^${bench}\$" -benchtime "$benchtime" -benchmem \
  -cpuprofile "$dir/fleetsearch.cpu" -memprofile "$dir/fleetsearch.mem" \
  -timeout 30m .

echo
echo "profiles written to $dir/fleetsearch.{cpu,mem}"
echo "inspect with:"
echo "  go tool pprof -top $dir/fleetsearch.cpu"
echo "  go tool pprof -top -tagfocus placement_phase=exchange $dir/fleetsearch.cpu"
echo "  go tool pprof -top -sample_index=alloc_objects $dir/fleetsearch.mem"
