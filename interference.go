// Package interference is the public API of this repository: an
// interference-management toolkit for distributed parallel applications in
// consolidated clusters, reproducing Han, Jeon, Choi and Huh (ASPLOS 2016).
//
// The toolkit models how performance interference on a *subset* of a
// distributed application's nodes determines its end-to-end latency, and
// uses that model to place applications on a cluster:
//
//	env, _ := interference.NewPrivateClusterEnv(42)
//	w, _ := interference.WorkloadByName("M.milc")
//	model, _ := interference.BuildModel(env, w, interference.DefaultBuildConfig())
//	// Predict the slowdown when nodes 0 and 1 host co-runners of
//	// bubble score 4 and the rest are quiet:
//	t, _ := model.PredictPressures([]float64{4, 4, 0, 0, 0, 0, 0, 0})
//
// The package re-exports the pieces a downstream user needs: measurement
// environments (a simulated private cluster and a simulated EC2 slice),
// the 18 benchmark workloads of the paper's Table 1, model construction
// (propagation matrix, heterogeneity policy, bubble score), the naive
// proportional baseline, and the two simulated-annealing placement
// searches (throughput and QoS). The full experiment suite that
// regenerates every table and figure of the paper lives in cmd/paperrepro.
package interference

import (
	"repro/internal/bubble"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ec2"
	"repro/internal/hetero"
	"repro/internal/measure"
	"repro/internal/online"
	"repro/internal/placement"
	"repro/internal/profile"
	"repro/internal/schedule"
	"repro/internal/workloads"
)

// Re-exported core types. See the respective internal packages for full
// documentation; the aliases make the public surface importable without
// reaching into internal paths.
type (
	// Env is a measurement environment over a simulated cluster.
	Env = measure.Env
	// Workload is one benchmark application (Table 1).
	Workload = workloads.Workload
	// Model is the paper's per-application interference model.
	Model = core.Model
	// NaiveModel is the proportional baseline model.
	NaiveModel = core.NaiveModel
	// Predictor estimates normalized time from per-node pressures.
	Predictor = core.Predictor
	// BuildConfig parameterizes model construction.
	BuildConfig = core.BuildConfig
	// Policy is a heterogeneity mapping policy (N max, N+1 max, ...).
	Policy = hetero.Policy
	// Matrix is the interference propagation matrix.
	Matrix = profile.Matrix
	// Placement assigns application units to hosts.
	Placement = cluster.Placement
	// Demand asks for a number of units of one application.
	Demand = cluster.Demand
	// PlacementRequest describes a placement problem.
	PlacementRequest = placement.Request
	// PlacementConfig tunes the annealing search.
	PlacementConfig = placement.Config
	// PlacementResult is a search outcome.
	PlacementResult = placement.Result
	// QoS constrains one application's predicted normalized time.
	QoS = placement.QoS
	// AppOutcome is a per-application simulation result for a placement.
	AppOutcome = measure.AppOutcome
	// Cluster describes the simulated hardware.
	Cluster = cluster.Cluster
	// OnlineEstimator refines a static model from production
	// observations (the paper's stated future work).
	OnlineEstimator = online.Estimator
	// Job is one deployment request for the online cluster manager.
	Job = schedule.Job
	// SchedulerConfig parameterizes the online cluster manager.
	SchedulerConfig = schedule.Config
	// SchedulerResult summarizes a scheduling run.
	SchedulerResult = schedule.Result
	// SchedulerPolicy selects how arriving jobs are placed.
	SchedulerPolicy = schedule.Policy
)

// Heterogeneity policies (Section 3.3).
const (
	NMax        = hetero.NMax
	NPlus1Max   = hetero.NPlus1Max
	AllMax      = hetero.AllMax
	Interpolate = hetero.Interpolate
)

// Profiling algorithms (Section 4).
const (
	BinaryOptimized = core.BinaryOptimized
	BinaryBrute     = core.BinaryBrute
	FullBrute       = core.FullBrute
	Random30        = core.Random30
	Random50        = core.Random50
)

// Placement goals.
const (
	Best  = placement.Best
	Worst = placement.Worst
)

// NewPrivateClusterEnv returns a measurement environment over the paper's
// private testbed: 8 hosts with 2x8-core sockets behind a 10 GbE switch.
func NewPrivateClusterEnv(seed int64) (*Env, error) {
	return measure.NewEnv(cluster.Default(), seed)
}

// NewEC2Env returns a measurement environment over the simulated EC2
// slice of Section 6: 32 instances with unmeasured, churning background
// tenants.
func NewEC2Env(seed int64) (*Env, error) { return ec2.NewEnv(seed) }

// Workloads returns the paper's 18 benchmark applications.
func Workloads() []Workload { return workloads.All() }

// DistributedWorkloads returns the 12 distributed applications.
func DistributedWorkloads() []Workload { return workloads.DistributedAll() }

// BatchWorkloads returns the 6 SPEC CPU2006 batch applications.
func BatchWorkloads() []Workload { return workloads.BatchAll() }

// WorkloadByName resolves a paper abbreviation such as "M.lmps".
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// DefaultBuildConfig mirrors the paper's profiling setup: 8 nodes,
// binary-optimized propagation profiling, 60 heterogeneous samples.
func DefaultBuildConfig() BuildConfig { return core.DefaultBuildConfig() }

// BuildModel profiles the environment and assembles the application's
// interference model: propagation matrix, heterogeneity policy, and bubble
// score.
func BuildModel(env *Env, w Workload, cfg BuildConfig) (*Model, error) {
	return core.BuildModel(env, w, cfg)
}

// BuildNaiveModel constructs the proportional baseline from the
// single-node sensitivity profile only.
func BuildNaiveModel(env *Env, w Workload, nodes int) (*NaiveModel, error) {
	return core.BuildNaiveModel(env, w, nodes)
}

// MeasureBubbleScore measures the interference a workload generates, on
// the bubble pressure scale.
func MeasureBubbleScore(env *Env, w Workload) (float64, error) {
	return core.MeasureBubbleScore(env, w)
}

// PredictPlacement predicts the normalized execution time of every
// application in a placement from the given predictors and bubble scores.
func PredictPlacement(p *Placement, predictors map[string]Predictor, scores map[string]float64) (map[string]float64, error) {
	return core.PredictPlacement(p, predictors, scores)
}

// DefaultPlacementConfig returns the annealing configuration used by the
// paper-reproduction experiments.
func DefaultPlacementConfig(seed int64) PlacementConfig { return placement.DefaultConfig(seed) }

// SearchPlacement runs the simulated-annealing placement search.
func SearchPlacement(req PlacementRequest, cfg PlacementConfig) (PlacementResult, error) {
	return placement.Search(req, cfg)
}

// RandomPlacements evaluates n random valid placements with the model
// (the paper's Random baseline). No QoS constraint is applied; use
// RandomPlacementsQoS to have each sample checked against one.
func RandomPlacements(req PlacementRequest, n int, seed int64) ([]PlacementResult, error) {
	return placement.RandomOutcome(req, n, seed, nil)
}

// RandomPlacementsQoS is RandomPlacements with each sample's
// QoSSatisfied evaluated against the given constraint.
func RandomPlacementsQoS(req PlacementRequest, n int, seed int64, qos *QoS) ([]PlacementResult, error) {
	return placement.RandomOutcome(req, n, seed, qos)
}

// NewPlacement returns an empty placement grid.
func NewPlacement(numHosts, slotsPerHost int) (*Placement, error) {
	return cluster.NewPlacement(numHosts, slotsPerHost)
}

// PrivateCluster returns the paper's private-testbed hardware description.
func PrivateCluster() Cluster { return cluster.Default() }

// Scheduler policies for RunScheduler.
const (
	ModelDriven = schedule.ModelDriven
	RandomFit   = schedule.RandomFit
	PackFirst   = schedule.PackFirst
)

// NewOnlineEstimator wraps a static model so production observations keep
// it calibrated (see internal/online). alpha in (0,1] is the learning
// rate.
func NewOnlineEstimator(model *Model, alpha float64) (*OnlineEstimator, error) {
	return online.New(model, alpha)
}

// CombineScores folds multiple co-located bubble scores into one,
// implementing the paper's Section 4.4 extension beyond pairwise
// co-location. Pass DefaultCollision for the collision coefficient.
func CombineScores(scores []float64, collision float64) (float64, error) {
	return bubble.CombineScores(scores, collision)
}

// DefaultCollision is the calibrated cache-collision coefficient for
// CombineScores.
const DefaultCollision = bubble.DefaultCollision

// RunScheduler executes the online cluster manager: jobs arrive over
// time and the configured policy places them on env's cluster.
func RunScheduler(env *Env, cfg SchedulerConfig, jobs []Job) (SchedulerResult, error) {
	return schedule.Run(env, cfg, jobs)
}
