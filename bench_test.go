package interference

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (in quick mode, so `go test -bench=.` stays tractable) and
// additionally benchmarks the hot paths of the library: the single-node
// contention solver, the distributed application engines, model
// construction, prediction, and the annealing placement search.
//
// Mapping to the paper (see DESIGN.md section 4 for the full index):
//
//	BenchmarkFigure2  - motivating example, naive vs. real
//	BenchmarkFigure3  - propagation curves (12 apps)
//	BenchmarkTable2   - heterogeneity policies (Table 2 / Figure 4)
//	BenchmarkTable3   - profiling algorithms (Table 3 / Figures 6-7)
//	BenchmarkTable4   - bubble scores
//	BenchmarkFigure8  - pairwise validation errors
//	BenchmarkFigure9  - M.Gems case study
//	BenchmarkFigure10 - QoS-aware placement
//	BenchmarkFigure11 - throughput placement (Table 5 / Figure 11)
//	BenchmarkFigure12 - EC2 propagation curves
//	BenchmarkTable6   - EC2 heterogeneity policies
//	BenchmarkFigure13 - EC2 validation errors

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/app"
	"repro/internal/bubble"
	"repro/internal/cluster"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
	benchLabErr  error
)

// lab returns a shared quick-mode lab. Model construction is cached inside
// the lab, so each benchmark measures the experiment itself (measurement
// runs, searches, validation co-runs) after a warm first iteration.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab, benchLabErr = experiments.NewLab(experiments.Config{Seed: 2016, Quick: true})
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

func benchRunner(b *testing.B, id string) {
	l := lab(b)
	r, err := experiments.RunnerByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B)  { benchRunner(b, "figure2") }
func BenchmarkFigure3(b *testing.B)  { benchRunner(b, "figure3") }
func BenchmarkTable2(b *testing.B)   { benchRunner(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchRunner(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchRunner(b, "table4") }
func BenchmarkFigure8(b *testing.B)  { benchRunner(b, "figure8") }
func BenchmarkFigure9(b *testing.B)  { benchRunner(b, "figure9") }
func BenchmarkFigure10(b *testing.B) { benchRunner(b, "figure10") }
func BenchmarkFigure11(b *testing.B) { benchRunner(b, "figure11") }
func BenchmarkFigure12(b *testing.B) { benchRunner(b, "figure12") }
func BenchmarkTable6(b *testing.B)   { benchRunner(b, "table6") }
func BenchmarkFigure13(b *testing.B) { benchRunner(b, "figure13") }

// ---- micro-benchmarks of the library's hot paths ----

// BenchmarkContentionSolve measures the single-node equilibrium solver,
// the innermost operation of every measurement.
func BenchmarkContentionSolve(b *testing.B) {
	node := contention.DefaultNode()
	w, err := WorkloadByName("M.milc")
	if err != nil {
		b.Fatal(err)
	}
	occ := []contention.Occupant{
		{Name: "app", Prof: w.Prof, Cores: 8},
		{Name: "bubble", Prof: bubble.Profile(6), Cores: 8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contention.Solve(node, occ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBSPRun measures one discrete-event execution of a BSP
// application across 8 nodes.
func BenchmarkBSPRun(b *testing.B) {
	w, err := WorkloadByName("M.milc")
	if err != nil {
		b.Fatal(err)
	}
	sd := []float64{2, 1, 1, 1, 1.5, 1, 1, 1}
	net := netsim.TenGbE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.App.Run(app.Params{Slowdown: sd, Net: net, RNG: sim.NewRNG(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskPoolRun measures the dynamic task-scheduling engine
// (Hadoop-style) with speculation enabled.
func BenchmarkTaskPoolRun(b *testing.B) {
	w, err := WorkloadByName("H.KM")
	if err != nil {
		b.Fatal(err)
	}
	sd := []float64{3, 1, 1, 1, 1, 1, 1, 1}
	net := netsim.TenGbE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.App.Run(app.Params{Slowdown: sd, Net: net, RNG: sim.NewRNG(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureBatch measures the batch machinery end to end: one
// 24-cell propagation grid (3 pressures x 8 node counts) per iteration on
// an uncached private-cluster environment, so the engine fan-out and the
// closed-form application paths dominate, not memoization.
func BenchmarkMeasureBatch(b *testing.B) {
	env, err := NewPrivateClusterEnv(7)
	if err != nil {
		b.Fatal(err)
	}
	env.Reps = 2
	w, err := WorkloadByName("M.milc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := env.NewBatch()
		var handles []*measure.Value
		for _, p := range []float64{2, 5, 8} {
			for c := 0; c <= 7; c++ {
				ps, err := measure.HomogeneousPressures(8, c, p)
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles, bt.Normalized(w, ps))
			}
		}
		if err := bt.Run(); err != nil {
			b.Fatal(err)
		}
		for _, h := range handles {
			if _, err := h.Result(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEnginePoolReuse measures a task-engine run in steady state,
// where every iteration recycles a pooled, pre-sized event engine;
// allocations per run are the interesting number.
func BenchmarkEnginePoolReuse(b *testing.B) {
	w, err := WorkloadByName("H.KM")
	if err != nil {
		b.Fatal(err)
	}
	sd := []float64{2, 1, 1, 1, 1, 1, 1, 1}
	net := netsim.TenGbE()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.App.Run(app.Params{Slowdown: sd, Net: net, RNG: sim.NewRNG(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelPredict measures a single model prediction (policy
// conversion plus bilinear matrix lookup), the operation the placement
// search performs thousands of times.
func BenchmarkModelPredict(b *testing.B) {
	l := lab(b)
	m, err := l.Model("M.milc")
	if err != nil {
		b.Fatal(err)
	}
	pressures := []float64{6, 4, 2, 0, 0, 1, 0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictPressures(pressures); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildModel measures full model construction (binary-optimized
// profiling + policy selection + bubble score) for one workload.
func BenchmarkBuildModel(b *testing.B) {
	env, err := NewPrivateClusterEnv(1)
	if err != nil {
		b.Fatal(err)
	}
	env.Reps = 2
	w, err := WorkloadByName("M.zeus")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultBuildConfig()
	cfg.Samples = 15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := BuildModel(env, w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinaryOptimized measures Algorithm 2 against a synthetic
// measurer, isolating the profiling logic from simulation cost.
func BenchmarkBinaryOptimized(b *testing.B) {
	meas := func(p float64, j int) (float64, error) {
		return 1 + 0.2*p*float64(j)/(1+float64(j)), nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.BinaryOptimized(meas, bubble.MaxPressure, 8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementSearch measures the annealing search with cheap
// synthetic predictors, isolating the search from model construction.
// benchPlacementRequest is the 8-host, 4-app problem shared by the
// placement-search benchmarks.
func benchPlacementRequest() placement.Request {
	pred := func(per float64) core.Predictor {
		return predictorFunc(func(ps []float64) (float64, error) {
			var s float64
			for _, p := range ps {
				s += p
			}
			return 1 + per*s, nil
		})
	}
	return placement.Request{
		NumHosts: 8, SlotsPerHost: 2,
		Demands: []cluster.Demand{
			{App: "a", Units: 4}, {App: "b", Units: 4},
			{App: "c", Units: 4}, {App: "d", Units: 4},
		},
		Predictors: map[string]core.Predictor{
			"a": pred(0.3), "b": pred(0.01), "c": pred(0.02), "d": pred(0.02),
		},
		Scores: map[string]float64{"a": 0.5, "b": 0.5, "c": 6, "d": 6},
	}
}

func BenchmarkPlacementSearch(b *testing.B) {
	req := benchPlacementRequest()
	cfg := placement.DefaultConfig(1)
	cfg.Iterations = 1000
	cfg.Restarts = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := placement.Search(req, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementSearchRestarts measures the multi-restart search,
// whose independent trajectories run one goroutine each.
func BenchmarkPlacementSearchRestarts(b *testing.B) {
	req := benchPlacementRequest()
	cfg := placement.DefaultConfig(1)
	cfg.Iterations = 1000
	cfg.Restarts = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := placement.Search(req, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaPredict measures a two-host incremental re-prediction —
// the exact per-proposal work of the search's swap loop — on the
// indexed (dense app ID, int32 grid) hot path the engine runs.
func BenchmarkDeltaPredict(b *testing.B) {
	req := benchPlacementRequest()
	p, err := cluster.RandomValid(sim.NewRNG(3), req.NumHosts, req.SlotsPerHost, req.Demands, 0)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := core.NewAppsIndex(p.Apps(), req.Predictors, req.Scores)
	if err != nil {
		b.Fatal(err)
	}
	grid, err := core.NewGrid(p, ix)
	if err != nil {
		b.Fatal(err)
	}
	cache := core.NewPredictionCache()
	out := make([]float64, len(p.Apps()))
	all := make([]int32, len(p.Apps()))
	for i := range all {
		all[i] = int32(i)
	}
	if err := core.DeltaPredictIdx(grid, all, ix, cache, out); err != nil {
		b.Fatal(err)
	}
	var affected []int32
	for _, a := range append(p.HostApps(0), p.HostApps(1)...) {
		id, ok := ix.IndexOf(a)
		if !ok {
			b.Fatalf("app %q not indexed", a)
		}
		affected = append(affected, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.DeltaPredictIdx(grid, affected, ix, cache, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaPredictByName measures the string-keyed DeltaPredict
// compatibility path (adversarial callers, tests, and the serving
// plane's shared tier), which pays name lookups the indexed path skips.
func BenchmarkDeltaPredictByName(b *testing.B) {
	req := benchPlacementRequest()
	p, err := cluster.RandomValid(sim.NewRNG(3), req.NumHosts, req.SlotsPerHost, req.Demands, 0)
	if err != nil {
		b.Fatal(err)
	}
	cache := core.NewPredictionCache()
	out := map[string]float64{}
	if err := core.DeltaPredict(p, p.Apps(), req.Predictors, req.Scores, cache, out); err != nil {
		b.Fatal(err)
	}
	affected := p.HostApps(0)
	affected = append(affected, p.HostApps(1)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.DeltaPredict(p, affected, req.Predictors, req.Scores, cache, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementSearchFaults measures the search on a degraded
// cluster: two hosts down, demands shrunk to fit the surviving slots.
// Tracks the overhead of the down-host guards in the swap loop.
func BenchmarkPlacementSearchFaults(b *testing.B) {
	req := benchPlacementRequest()
	for i := range req.Demands {
		req.Demands[i].Units = 3 // 12 units on 12 surviving slots
	}
	req.DownHosts = []int{2, 5}
	cfg := placement.DefaultConfig(1)
	cfg.Iterations = 1000
	cfg.Restarts = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := placement.Search(req, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleetSpec is the 5000-host, 3-class fleet shared by the
// fleet-scale benchmarks.
func benchFleetSpec() fleet.Spec {
	return fleet.Spec{
		Name:         "bench",
		TotalHosts:   5000,
		SlotsPerHost: 2,
		Templates: []fleet.Template{
			{Name: "core", Weight: 70},
			{Name: "burst", Weight: 20, DegradeFactor: 1.2, StartupRounds: 4},
			{Name: "legacy", Weight: 10, Capacity: 0.8, DegradeFactor: 1.5},
		},
	}
}

// BenchmarkFleetGen measures template-driven fleet generation at fleet
// scale: apportionment, class expansion, seeded shuffle, and staged
// startup for 5000 hosts per iteration.
func BenchmarkFleetGen(b *testing.B) {
	spec := benchFleetSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Generate(spec, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleetSearchRequest builds the thousand-app problem: 1000 apps x 4
// units on the 5000-host fleet, with cheap synthetic predictors so the
// benchmark isolates the search machinery.
func benchFleetSearchRequest() placement.Request {
	return benchFleetRequestN(benchFleetSpec().TotalHosts, 1000)
}

// benchFleetRequestN is benchFleetSearchRequest at an arbitrary scale:
// n apps x 4 units on hosts two-slot hosts.
func benchFleetRequestN(hosts, n int) placement.Request {
	rng := sim.NewRNG(9).Stream("bench-fleet-apps")
	demands := make([]cluster.Demand, 0, n)
	predictors := make(map[string]core.Predictor, n)
	scores := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		app := "app" + string(rune('a'+i/676%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i%26))
		per := 0.02 + 0.08*rng.Float64()
		demands = append(demands, cluster.Demand{App: app, Units: 4})
		predictors[app] = predictorFunc(func(ps []float64) (float64, error) {
			var s float64
			for _, p := range ps {
				s += p
			}
			return 1 + per*s, nil
		})
		scores[app] = 0.5 + 5.5*rng.Float64()
	}
	return placement.Request{
		NumHosts:     hosts,
		SlotsPerHost: 2,
		Demands:      demands,
		Predictors:   predictors,
		Scores:       scores,
	}
}

// BenchmarkFleetSearch measures one full hierarchical placement search —
// 1000 applications, 4000 units, 5000 hosts sharded into 50 cells, with
// a cross-cell exchange phase — per iteration. This is the fleet-scale
// path a flat search cannot cover in comparable time.
func BenchmarkFleetSearch(b *testing.B) {
	req := benchFleetSearchRequest()
	cfg := placement.Config{Iterations: 200, Restarts: 1, Cells: 50, ExchangeIters: 500, ExchangeWorkers: runtime.GOMAXPROCS(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := placement.Search(req, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSearchXL doubles every axis of BenchmarkFleetSearch —
// 2000 applications, 8000 units, 10000 hosts in 100 cells — to catch
// super-linear regressions the base benchmark's scale would hide.
func BenchmarkFleetSearchXL(b *testing.B) {
	req := benchFleetRequestN(10000, 2000)
	cfg := placement.Config{Iterations: 200, Restarts: 1, Cells: 100, ExchangeIters: 500, ExchangeWorkers: runtime.GOMAXPROCS(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := placement.Search(req, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResilientPredict measures a tagged prediction through the
// graceful-degradation path: a partial (cell-lossy) primary model with a
// naive fallback behind it.
func BenchmarkResilientPredict(b *testing.B) {
	l := lab(b)
	m, err := l.Model("M.milc")
	if err != nil {
		b.Fatal(err)
	}
	naive, err := BuildNaiveModel(l.Env, mustWorkload(b, "M.milc"), 8)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := fault.New(fault.Plan{
		Seed:   1,
		Faults: []fault.Fault{{Kind: fault.ProfileCellLoss, Fraction: 0.2}},
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	inj.Activate(0)
	lossy := *m
	lossy.Matrix = inj.ApplyCellLoss(m.Matrix, "M.milc")
	res := core.NewResilient("M.milc", core.Partial{M: &lossy}, naive, nil)
	pressures := []float64{6, 4, 2, 0, 0, 1, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := res.PredictTagged(pressures); err != nil {
			b.Fatal(err)
		}
	}
}

func mustWorkload(b *testing.B, name string) Workload {
	b.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkDriftTrackerObserve measures one drift-tracker ingestion — the
// per-round, per-app hot path of the interfd observation plane — through a
// live telemetry registry, exactly as the daemon runs it. The gated number
// is allocs/op: Observe is required to stay alloc-free.
func BenchmarkDriftTrackerObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	tr, err := drift.New(drift.DefaultConfig(), reg)
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Register("M.milc", 8, 8, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Observe("M.milc", 3.5, 4.5, 1.2, 1.3, i); err != nil {
			b.Fatal(err)
		}
	}
}

// predictorFunc adapts a closure to core.Predictor.
type predictorFunc func([]float64) (float64, error)

func (f predictorFunc) PredictPressures(ps []float64) (float64, error) { return f(ps) }

// BenchmarkRunPlacement measures a full simulator evaluation of one
// placement (the expensive truth the model search avoids).
func BenchmarkRunPlacement(b *testing.B) {
	env, err := NewPrivateClusterEnv(1)
	if err != nil {
		b.Fatal(err)
	}
	env.Reps = 1
	reg := map[string]Workload{}
	var demands []Demand
	for _, n := range []string{"M.milc", "C.libq", "H.KM", "M.lmps"} {
		w, err := WorkloadByName(n)
		if err != nil {
			b.Fatal(err)
		}
		reg[n] = w
		demands = append(demands, Demand{App: n, Units: 4})
	}
	p, err := cluster.PackedPlacement(8, 2, []cluster.Demand{
		{App: "M.milc", Units: 4}, {App: "C.libq", Units: 4},
		{App: "H.KM", Units: 4}, {App: "M.lmps", Units: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunPlacement(p, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchService builds a ready placement service over the synthetic
// 8-host problem, shared setup for the serving-plane benchmarks.
func benchService(b *testing.B, iters, maxBatch int) *serve.Service {
	b.Helper()
	s, err := serve.New(serve.Config{
		NumHosts: 8, SlotsPerHost: 2, Seed: 1,
		Iterations: iters, Restarts: 1,
		QueueDepth: 256, MaxBatch: maxBatch,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	req := benchPlacementRequest()
	s.SetBackend(serve.Backend{Predictors: req.Predictors, Scores: req.Scores})
	return s
}

// BenchmarkPlaceRequest measures one placement request end to end
// through the service — admission, batched search, response assembly —
// with the same synthetic predictors as BenchmarkPlacementSearch, so the
// delta between the two is the serving overhead plus tracing.
func BenchmarkPlaceRequest(b *testing.B) {
	s := benchService(b, 600, 8)
	req := serve.PlaceRequest{Apps: []serve.AppDemand{
		{App: "a", Units: 4}, {App: "b", Units: 4},
		{App: "c", Units: 4}, {App: "d", Units: 4},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = int64(i + 1)
		if _, status, err := s.Place(req); err != nil || status != 200 {
			b.Fatalf("status %d: %v", status, err)
		}
	}
}

// BenchmarkAdmissionQueue isolates the admission machinery — enqueue,
// deterministic batch formation, ordered merge, span bookkeeping — by
// making the search itself nearly free (one iteration) and hammering the
// queue from parallel clients.
func BenchmarkAdmissionQueue(b *testing.B) {
	s := benchService(b, 1, 16)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := serve.PlaceRequest{Apps: []serve.AppDemand{{App: "a", Units: 4}}}
		i := 0
		for pb.Next() {
			i++
			req.Seed = int64(i)
			if _, status, err := s.Place(req); err != nil || status != 200 {
				b.Fatalf("status %d: %v", status, err)
			}
		}
	})
}
