# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race vet ci bench repro quick run-daemon

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# The pre-commit gate: vet + build + race-enabled tests.
ci:
	./ci.sh

# Run all benchmarks and refresh BENCH_telemetry.json (ns/op per
# benchmark). Override BENCHTIME for steadier numbers, e.g.
# `make bench BENCHTIME=2s`.
bench:
	BENCHTIME=$${BENCHTIME:-1x} ./scripts/bench.sh

# Regenerate EXPERIMENTS.md from the full experiment suite.
repro:
	go run ./cmd/paperrepro -markdown -o EXPERIMENTS.md

# A fast sanity pass over every experiment.
quick:
	go run ./cmd/paperrepro -quick

# Start the long-running interference daemon with its observability plane
# on :8080 (/metrics, /healthz, /readyz, /api/events, /debug/pprof/).
# Ctrl-C drains the round in flight and writes interfd-report.json.
run-daemon:
	go run ./cmd/interfd -listen :8080
