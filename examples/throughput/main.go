// Throughput placement (the paper's Section 5.3): find the best and worst
// placements of a 4-application mix and compare them with random
// placements — the Figure 11 experiment for a single mix.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"

	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/workloads"

	interference "repro"
)

func main() {
	env, err := interference.NewPrivateClusterEnv(11)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's HW1 mix: two communication-heavy NPB codes, Hadoop
	// K-means, and lammps.
	mix := []string{"N.mg", "N.cg", "H.KM", "M.lmps"}

	preds := map[string]interference.Predictor{}
	scores := map[string]float64{}
	reg := map[string]workloads.Workload{}
	var demands []interference.Demand
	for _, name := range mix {
		w, err := interference.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiling %s...\n", name)
		m, err := interference.BuildModel(env, w, interference.DefaultBuildConfig())
		if err != nil {
			log.Fatal(err)
		}
		preds[name], scores[name], reg[name] = m, m.BubbleScore, w
		demands = append(demands, interference.Demand{App: name, Units: 4})
	}
	req := interference.PlacementRequest{
		NumHosts: 8, SlotsPerHost: 2,
		Demands: demands, Predictors: preds, Scores: scores,
	}

	// Search both directions.
	bestCfg := interference.DefaultPlacementConfig(3)
	best, err := interference.SearchPlacement(req, bestCfg)
	if err != nil {
		log.Fatal(err)
	}
	worstCfg := interference.DefaultPlacementConfig(4)
	worstCfg.Goal = placement.Worst
	worst, err := interference.SearchPlacement(req, worstCfg)
	if err != nil {
		log.Fatal(err)
	}
	randoms, err := interference.RandomPlacements(req, 5, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate everything on the simulated cluster; report speedup over
	// the worst placement, averaged across the applications.
	worstOut, err := env.RunPlacement(worst.Placement, reg)
	if err != nil {
		log.Fatal(err)
	}
	speedup := func(p *interference.Placement) float64 {
		out, err := env.RunPlacement(p, reg)
		if err != nil {
			log.Fatal(err)
		}
		var sp []float64
		for a, o := range out {
			sp = append(sp, worstOut[a].Normalized/o.Normalized)
		}
		return stats.Mean(sp)
	}

	fmt.Printf("\nbest placement:  %s\n", best.Placement)
	fmt.Printf("worst placement: %s\n\n", worst.Placement)
	fmt.Printf("speedup over the worst placement (simulated):\n")
	fmt.Printf("  best (model-driven): %.3f\n", speedup(best.Placement))
	var rnd []float64
	for _, r := range randoms {
		rnd = append(rnd, speedup(r.Placement))
	}
	fmt.Printf("  random (5 avg):      %.3f\n", stats.Mean(rnd))
	fmt.Printf("  worst:               1.000 (by definition)\n")
}
