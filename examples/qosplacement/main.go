// QoS-aware placement (the paper's Section 5.2): protect a
// mission-critical distributed application at 80% of its solo performance
// while packing three other applications onto the same 8-host cluster.
//
//	go run ./examples/qosplacement
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/workloads"

	interference "repro"
)

func main() {
	env, err := interference.NewPrivateClusterEnv(7)
	if err != nil {
		log.Fatal(err)
	}

	// The mix: lammps is mission-critical; libquantum is a batch job
	// that generates enormous memory pressure; K-means and CG fill the
	// cluster.
	mix := []string{"M.lmps", "C.libq", "H.KM", "N.cg"}
	const qosTarget = "M.lmps"

	// Build a model per application (in a real deployment these come
	// from one-time profiling runs and are reused).
	preds := map[string]interference.Predictor{}
	scores := map[string]float64{}
	reg := map[string]workloads.Workload{}
	var demands []interference.Demand
	for _, name := range mix {
		w, err := interference.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiling %s...\n", name)
		m, err := interference.BuildModel(env, w, interference.DefaultBuildConfig())
		if err != nil {
			log.Fatal(err)
		}
		preds[name] = m
		scores[name] = m.BubbleScore
		reg[name] = w
		demands = append(demands, interference.Demand{App: name, Units: 4})
	}

	// Search: satisfy the QoS bound first, then minimize the weighted
	// runtime of everyone else.
	req := interference.PlacementRequest{
		NumHosts: 8, SlotsPerHost: 2,
		Demands: demands, Predictors: preds, Scores: scores,
	}
	cfg := interference.DefaultPlacementConfig(1)
	cfg.QoS = &interference.QoS{App: qosTarget, MaxNormalized: 1.25} // 80% of solo perf
	res, err := interference.SearchPlacement(req, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen placement: %s\n", res.Placement)
	fmt.Printf("QoS satisfied under the model: %v (predicted %.3f <= 1.25)\n\n",
		res.QoSSatisfied, res.Predicted[qosTarget])

	// Verify on the simulated cluster.
	outs, err := env.RunPlacement(res.Placement, reg)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for a := range outs {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		marker := " "
		if a == qosTarget {
			marker = "*"
		}
		fmt.Printf("%s %-8s predicted %.3f   simulated %.3f\n",
			marker, a, res.Predicted[a], outs[a].Normalized)
	}
	if outs[qosTarget].Normalized <= 1.25 {
		fmt.Printf("\nQoS HELD: %s ran within 80%% of its solo performance.\n", qosTarget)
	} else {
		fmt.Printf("\nQoS MISSED on the simulator (model error): %.3f > 1.25\n",
			outs[qosTarget].Normalized)
	}
}
