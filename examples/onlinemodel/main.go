// Online model refinement: the paper's stated future work. A statically
// profiled model goes stale when the application's behaviour drifts (new
// dataset, new binary); the online estimator absorbs production
// observations and tracks the new behaviour, and raises a re-profiling
// signal while it is still wrong.
//
//	go run ./examples/onlinemodel
package main

import (
	"fmt"
	"log"

	"repro/internal/hetero"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"

	interference "repro"
)

func main() {
	env, err := interference.NewPrivateClusterEnv(23)
	if err != nil {
		log.Fatal(err)
	}
	w, err := interference.WorkloadByName("M.zeus")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling M.zeus (static model)...")
	model, err := interference.BuildModel(env, w, interference.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	est, err := interference.NewOnlineEstimator(model, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	// Behaviour drift: a new input dataset makes the application much
	// more cache-hungry than when it was profiled.
	drifted := w
	drifted.Prof.APKI *= 2.2
	drifted.Prof.WSSMB *= 1.4
	fmt.Println("the application's behaviour has drifted (2.2x the cache traffic)")

	rng := sim.NewRNG(3)
	fmt.Printf("\n%-6s %-22s %-22s %-14s\n", "obs", "static model err", "online estimator err", "reprofile?")
	var staticErrs, onlineErrs []float64
	for i := 1; i <= 80; i++ {
		cfg := hetero.SampleConfig(rng.StreamN("obs", i), 8, online.MaxPressure)
		actual, err := env.NormalizedWithBubbles(drifted, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sv, err := model.PredictPressures(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ov, err := est.PredictPressures(cfg)
		if err != nil {
			log.Fatal(err)
		}
		staticErrs = append(staticErrs, stats.RelErrPct(sv, actual))
		onlineErrs = append(onlineErrs, stats.RelErrPct(ov, actual))
		if err := est.Observe(cfg, actual); err != nil {
			log.Fatal(err)
		}
		if i%20 == 0 {
			fmt.Printf("%-6d %-22s %-22s %-14v\n", i,
				fmt.Sprintf("%.1f%%", stats.Mean(staticErrs[i-20:])),
				fmt.Sprintf("%.1f%%", stats.Mean(onlineErrs[i-20:])),
				est.NeedsReprofile(0.10, 10))
		}
	}
	drift, err := est.Drift()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatrix drift from the stale profile: %.1f%%\n", 100*drift)
	fmt.Println("the online estimator converges toward the drifted behaviour while the")
	fmt.Println("static model keeps mispredicting every placement decision.")
}
