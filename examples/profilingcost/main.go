// Profiling-cost study (the paper's Section 4.2): compare how many
// profiling runs each matrix-construction algorithm needs and how accurate
// the resulting model is — Table 3 for a single workload.
//
//	go run ./examples/profilingcost
package main

import (
	"fmt"
	"log"

	"repro/internal/bubble"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"

	interference "repro"
)

func main() {
	env, err := interference.NewPrivateClusterEnv(9)
	if err != nil {
		log.Fatal(err)
	}
	w, err := interference.WorkloadByName("M.lesl")
	if err != nil {
		log.Fatal(err)
	}

	// The measurer is the expensive operation every algorithm tries to
	// minimize: one profiling run of the distributed application under a
	// homogeneous bubble configuration.
	meas := core.PropagationMeasurer(env, w, 8)

	// Exhaustive ground truth: 64 profiling runs.
	truth, err := profile.FullBrute(meas, bubble.MaxPressure, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: %d profiling runs (100%% cost)\n\n", truth.Measured)

	type result struct {
		name string
		res  profile.Result
	}
	rng := sim.NewRNG(1)
	var rows []result
	run := func(name string, res profile.Result, err error) {
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, result{name, res})
	}
	br, err := profile.BinaryBrute(meas, bubble.MaxPressure, 8, 0)
	run("binary-brute (Algorithm 1)", br, err)
	bo, err := profile.BinaryOptimized(meas, bubble.MaxPressure, 8, 0)
	run("binary-optimized (Algorithm 2)", bo, err)
	r50, err := profile.RandomFrac(meas, bubble.MaxPressure, 8, 0.50, rng.Stream("r50"))
	run("random-50%", r50, err)
	r30, err := profile.RandomFrac(meas, bubble.MaxPressure, 8, 0.30, rng.Stream("r30"))
	run("random-30%", r30, err)

	fmt.Printf("%-32s %8s %8s %10s\n", "algorithm", "runs", "cost", "error")
	for _, r := range rows {
		e, err := r.res.Matrix.MeanAbsError(truth.Matrix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %8d %7.1f%% %9.2f%%\n",
			r.name, r.res.Measured, r.res.CostPct(), 100*e)
	}
	fmt.Println("\nbinary-optimized reaches a useful model at a fraction of the cost,")
	fmt.Println("which is what makes per-application propagation profiling practical.")
}
