// Quickstart: build an interference model for one distributed application
// and use it to predict performance under interference it has never been
// profiled against.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	interference "repro"
)

func main() {
	// A measurement environment over the paper's private testbed: 8
	// hosts, 16 cores each, behind a 10 GbE switch. Everything is
	// simulated, so this runs on a laptop in seconds.
	env, err := interference.NewPrivateClusterEnv(42)
	if err != nil {
		log.Fatal(err)
	}

	// M.milc is a bulk-synchronous SPEC MPI2007 code: interference on a
	// single of its nodes gates every iteration.
	w, err := interference.WorkloadByName("M.milc")
	if err != nil {
		log.Fatal(err)
	}

	// Profile it: binary-optimized propagation profiling (Algorithm 2),
	// 60-sample heterogeneity policy search, bubble-score measurement.
	cfg := interference.DefaultBuildConfig()
	model, err := interference.BuildModel(env, w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model for %s:\n", model.Workload)
	fmt.Printf("  bubble score     %.2f (interference it generates)\n", model.BubbleScore)
	fmt.Printf("  best policy      %s (heterogeneity conversion)\n", model.Policy)
	fmt.Printf("  profiling cost   %.1f%% of all interference settings\n\n", model.ProfilingCostPct)

	// Predict: what happens if two of its eight nodes host a heavy
	// co-runner (pressure 6) and one more a light one (pressure 2)?
	pressures := []float64{6, 6, 2, 0, 0, 0, 0, 0}
	predicted, err := model.PredictPressures(pressures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted normalized time under %v: %.3f\n", pressures, predicted)

	// Check the prediction against the simulator (the stand-in for the
	// paper's real cluster).
	actual, err := env.NormalizedWithBubbles(w, pressures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated normalized time:             %.3f\n", actual)
	fmt.Printf("prediction error:                      %.1f%%\n",
		100*abs(predicted-actual)/actual)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
