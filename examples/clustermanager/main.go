// Online cluster manager: distributed jobs arrive over time and a
// placement policy decides where each lands. The model-driven policy uses
// the paper's interference models to keep sensitive jobs away from heavy
// generators; the baselines show what interference-oblivious managers do.
//
//	go run ./examples/clustermanager
package main

import (
	"fmt"
	"log"

	interference "repro"
)

func main() {
	env, err := interference.NewPrivateClusterEnv(13)
	if err != nil {
		log.Fatal(err)
	}

	// Build models once (a real deployment profiles each application
	// once and reuses the model for every arrival).
	names := []string{"M.milc", "C.libq", "H.KM", "N.cg"}
	preds := map[string]interference.Predictor{}
	scores := map[string]float64{}
	wl := map[string]interference.Workload{}
	for _, n := range names {
		w, err := interference.WorkloadByName(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profiling %s...\n", n)
		m, err := interference.BuildModel(env, w, interference.DefaultBuildConfig())
		if err != nil {
			log.Fatal(err)
		}
		preds[n], scores[n], wl[n] = m, m.BubbleScore, w
	}

	// A day's worth of arrivals (compressed): the cache-sensitive milc
	// job carries a QoS bound; libquantum batches arrive around it.
	jobs := []interference.Job{
		{ID: 1, Workload: wl["M.milc"], Units: 4, Work: 50, Arrival: 0, QoSBound: 1.25},
		{ID: 2, Workload: wl["C.libq"], Units: 4, Work: 80, Arrival: 2},
		{ID: 3, Workload: wl["H.KM"], Units: 4, Work: 60, Arrival: 6},
		{ID: 4, Workload: wl["C.libq"], Units: 4, Work: 40, Arrival: 9},
		{ID: 5, Workload: wl["N.cg"], Units: 4, Work: 45, Arrival: 30},
		{ID: 6, Workload: wl["C.libq"], Units: 4, Work: 35, Arrival: 34},
	}

	fmt.Printf("\n%-14s %10s %10s %14s\n", "policy", "makespan", "stretch", "QoS violations")
	for _, policy := range []interference.SchedulerPolicy{
		interference.ModelDriven, interference.RandomFit, interference.PackFirst,
	} {
		res, err := interference.RunScheduler(env, interference.SchedulerConfig{
			NumHosts: 8, SlotsPerHost: 2,
			Policy: policy, Predictors: preds, Scores: scores, Seed: 7,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.1fs %10.3f %14d\n",
			policy, res.Makespan, res.MeanStretch, res.QoSViolations)
	}
	fmt.Println("\nThe model-driven manager should match or beat the oblivious baselines on")
	fmt.Println("stretch while keeping the QoS-bound job inside its guarantee.")
}
