package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func file(entries map[string]float64) benchFile {
	bf := benchFile{Benchtime: "1x", Benchmarks: map[string]benchEntry{}}
	for name, ns := range entries {
		bf.Benchmarks[name] = benchEntry{Iterations: 1, NsPerOp: ns}
	}
	return bf
}

func TestCompareIdentityPasses(t *testing.T) {
	bf := file(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 2000})
	diffs, regressions, onlyOld, onlyNew := compare(bf, bf, 25)
	if len(diffs) != 2 || len(regressions) != 0 || len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Errorf("identity compare: diffs=%d regressions=%d onlyOld=%v onlyNew=%v",
			len(diffs), len(regressions), onlyOld, onlyNew)
	}
	for _, d := range diffs {
		if d.Ratio != 1 {
			t.Errorf("%s ratio = %v, want 1", d.Name, d.Ratio)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := file(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 2000})
	regressed := file(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 3000})
	_, regressions, _, _ := compare(old, regressed, 25)
	if len(regressions) != 1 || regressions[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want BenchmarkB only", regressions)
	}
	if got := regressions[0].Ratio; got != 1.5 {
		t.Errorf("ratio = %v, want 1.5", got)
	}
	// Just inside the threshold: no regression.
	within := file(map[string]float64{"BenchmarkA": 124, "BenchmarkB": 2000})
	if _, r, _, _ := compare(old, within, 25); len(r) != 0 {
		t.Errorf("within-threshold run flagged: %+v", r)
	}
}

// fileAllocs builds a benchFile whose entries carry allocation counts.
func fileAllocs(entries map[string][2]float64) benchFile {
	bf := benchFile{Benchtime: "1x", Benchmarks: map[string]benchEntry{}}
	for name, v := range entries {
		allocs := v[1]
		bf.Benchmarks[name] = benchEntry{Iterations: 1, NsPerOp: v[0], AllocsPerOp: &allocs}
	}
	return bf
}

func TestCompareAllocsRegression(t *testing.T) {
	// An alloc-free baseline regresses on any allocation at all.
	old := fileAllocs(map[string][2]float64{"BenchmarkHot": {100, 0}})
	bad := fileAllocs(map[string][2]float64{"BenchmarkHot": {100, 2}})
	_, r, _, _ := compare(old, bad, 25)
	if len(r) != 1 || r[0].Dim != "allocs/op" {
		t.Fatalf("alloc-free regression not flagged: %+v", r)
	}
	// Unchanged counts pass.
	if _, r, _, _ := compare(old, old, 25); len(r) != 0 {
		t.Errorf("identical alloc counts flagged: %+v", r)
	}
	// Nonzero baselines get the percentage threshold.
	old = fileAllocs(map[string][2]float64{"BenchmarkHot": {100, 4}})
	grown := fileAllocs(map[string][2]float64{"BenchmarkHot": {100, 6}})
	if _, r, _, _ := compare(old, grown, 25); len(r) != 1 || r[0].Dim != "allocs/op" {
		t.Errorf("50%% alloc growth not flagged: %+v", r)
	}
	within := fileAllocs(map[string][2]float64{"BenchmarkHot": {100, 4}})
	if _, r, _, _ := compare(old, within, 25); len(r) != 0 {
		t.Errorf("within-threshold allocs flagged: %+v", r)
	}
	// Files without alloc counts (older baselines) are never alloc-gated.
	legacy := file(map[string]float64{"BenchmarkHot": 100})
	if _, r, _, _ := compare(legacy, bad, 25); len(r) != 0 {
		t.Errorf("nil-vs-present alloc counts flagged: %+v", r)
	}
	// A benchmark can regress on both dimensions at once.
	slow := fileAllocs(map[string][2]float64{"BenchmarkHot": {300, 2}})
	old = fileAllocs(map[string][2]float64{"BenchmarkHot": {100, 0}})
	_, r, _, _ = compare(old, slow, 25)
	if len(r) != 2 {
		t.Errorf("dual regression produced %d entries, want 2: %+v", len(r), r)
	}
}

func TestCompareTracksMissingAndNew(t *testing.T) {
	old := file(map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 50})
	new := file(map[string]float64{"BenchmarkA": 100, "BenchmarkFresh": 10})
	_, _, onlyOld, onlyNew := compare(old, new, 25)
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkFresh" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

// TestRegressionFixtureAgainstCommitted pins the ci.sh gate: the committed
// BENCH_telemetry.json compared against the synthetic regression fixture
// must produce regressions, and against itself must not.
func TestRegressionFixtureAgainstCommitted(t *testing.T) {
	committed, err := load(filepath.Join("..", "..", "BENCH_telemetry.json"))
	if err != nil {
		t.Fatal(err)
	}
	fixture, err := load(filepath.Join("testdata", "bench_regression.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, r, _, _ := compare(committed, committed, 25); len(r) != 0 {
		t.Errorf("self-compare produced regressions: %+v", r)
	}
	_, r, onlyOld, _ := compare(committed, fixture, 25)
	if len(r) == 0 {
		t.Error("regression fixture produced no regressions — the CI gate would pass it")
	}
	if len(onlyOld) != 0 {
		t.Errorf("fixture dropped benchmarks: %v", onlyOld)
	}
}

// TestMissingFixtureAgainstCommitted pins the other half of the ci.sh
// gate: the committed missing-benchmark fixture must differ from the
// baseline only by dropped benchmarks (so the gate fails for the right
// reason, and -allow-missing genuinely rescues it).
func TestMissingFixtureAgainstCommitted(t *testing.T) {
	committed, err := load(filepath.Join("..", "..", "BENCH_telemetry.json"))
	if err != nil {
		t.Fatal(err)
	}
	fixture, err := load(filepath.Join("testdata", "bench_missing.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, regressions, onlyOld, onlyNew := compare(committed, fixture, 25)
	if len(onlyOld) == 0 {
		t.Error("missing fixture drops no benchmarks — the CI missing-benchmark gate would pass it")
	}
	if len(regressions) != 0 {
		t.Errorf("missing fixture also regresses %+v; -allow-missing would not rescue it and the gate tests the wrong thing", regressions)
	}
	if len(onlyNew) != 0 {
		t.Errorf("missing fixture invents benchmarks: %v", onlyNew)
	}
}

// TestAllocsFixtureAgainstCommitted pins the third ci.sh gate: the
// committed allocs-regression fixture must fail solely on allocs/op —
// the alloc-free hot paths (drift tracker ingestion, model prediction,
// indexed delta prediction) growing allocations — with identical
// timings and no dropped benchmarks.
func TestAllocsFixtureAgainstCommitted(t *testing.T) {
	committed, err := load(filepath.Join("..", "..", "BENCH_telemetry.json"))
	if err != nil {
		t.Fatal(err)
	}
	fixture, err := load(filepath.Join("testdata", "bench_allocs_regression.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, regressions, onlyOld, onlyNew := compare(committed, fixture, 25)
	if len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Errorf("allocs fixture drops/invents benchmarks: %v / %v", onlyOld, onlyNew)
	}
	want := map[string]bool{
		"BenchmarkDriftTrackerObserve": true,
		"BenchmarkModelPredict":        true,
		"BenchmarkDeltaPredict":        true,
	}
	if len(regressions) != len(want) {
		t.Fatalf("allocs fixture regressions = %+v, want exactly %d", regressions, len(want))
	}
	for _, r := range regressions {
		if r.Dim != "allocs/op" {
			t.Errorf("regression on %s is %s, want allocs/op only", r.Name, r.Dim)
		}
		if !want[r.Name] {
			t.Errorf("unexpected regression on %s", r.Name)
		}
		delete(want, r.Name)
	}
	for name := range want {
		t.Errorf("fixture failed to flag the alloc-free baseline of %s", name)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchtime":"1x","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(empty); err == nil {
		t.Error("loaded a file with no benchmarks")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad); err == nil {
		t.Error("loaded invalid JSON")
	}
	if _, err := load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loaded a nonexistent file")
	}
	good := filepath.Join(dir, "good.json")
	raw, _ := json.Marshal(file(map[string]float64{"BenchmarkA": 1}))
	if err := os.WriteFile(good, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(good); err != nil {
		t.Errorf("rejected a valid file: %v", err)
	}
}

func TestFilterOnly(t *testing.T) {
	bf := file(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 2000, "BenchmarkC": 5})
	kept, missing := filterOnly(bf, []string{"BenchmarkB", "BenchmarkA"})
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	if len(kept.Benchmarks) != 2 {
		t.Fatalf("kept %d benchmarks, want 2", len(kept.Benchmarks))
	}
	if _, ok := kept.Benchmarks["BenchmarkC"]; ok {
		t.Error("BenchmarkC should have been filtered out")
	}
	_, missing = filterOnly(bf, []string{"BenchmarkA", "BenchmarkZ", "BenchmarkQ"})
	if len(missing) != 2 || missing[0] != "BenchmarkQ" || missing[1] != "BenchmarkZ" {
		t.Errorf("missing = %v, want [BenchmarkQ BenchmarkZ]", missing)
	}
	// A filtered compare gates only the named benchmarks: a regression
	// elsewhere must not trip it.
	old := file(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 2000})
	regressed := file(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 9000})
	fo, _ := filterOnly(old, []string{"BenchmarkA"})
	fn, _ := filterOnly(regressed, []string{"BenchmarkA"})
	if _, regressions, _, _ := compare(fo, fn, 25); len(regressions) != 0 {
		t.Errorf("regression outside -only set leaked through: %+v", regressions)
	}
}

func TestParseOnly(t *testing.T) {
	if got := parseOnly(""); got != nil {
		t.Errorf("empty string should parse to nil, got %v", got)
	}
	got := parseOnly(" BenchmarkA, ,BenchmarkB ,")
	if len(got) != 2 || got[0] != "BenchmarkA" || got[1] != "BenchmarkB" {
		t.Errorf("parseOnly = %v", got)
	}
}
