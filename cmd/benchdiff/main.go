// Command benchdiff compares two BENCH_*.json files produced by
// scripts/bench.sh and fails (exit 1) when any benchmark regressed past a
// ns/op threshold, or grew its allocs/op where both files recorded
// allocation counts (an alloc-free baseline fails on any allocation at
// all) — the gate that makes the repository's benchmark trajectory block
// CI instead of just accumulating.
//
// Examples:
//
//	benchdiff BENCH_telemetry.json BENCH_new.json
//	benchdiff -threshold 10 old.json new.json
//	benchdiff -allow-missing old.json new.json
//	benchdiff -only BenchmarkPlacementSearch,BenchmarkModelPredict old.json new.json
//
// The default threshold is generous (25%) because scripts/bench.sh's
// default -benchtime 1x numbers are single-iteration samples; tighten it
// when comparing BENCHTIME=2s runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// benchFile mirrors the JSON scripts/bench.sh writes.
type benchFile struct {
	Benchtime  string                `json:"benchtime"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// AllocsPerOp is present when the run was recorded with -benchmem
	// (scripts/bench.sh does this); nil in older files.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// diff is the comparison of one benchmark present in both files.
type diff struct {
	Name                 string
	Old, New             float64
	Ratio                float64 // New/Old
	OldAllocs, NewAllocs *float64
	Dim                  string // regression dimension: "" / "ns/op", or "allocs/op"
}

// allocRegressed gates the allocation count. Alloc counts are
// deterministic, so an alloc-free baseline (old == 0) regresses on any
// allocation at all; otherwise the ns/op percentage threshold applies.
func allocRegressed(old, new, thresholdPct float64) bool {
	if old == 0 {
		return new > 0
	}
	return new/old > 1+thresholdPct/100
}

// compare pairs the two files' benchmarks. Benchmarks only in one file
// are returned separately; regressions are diffs whose ns/op ratio exceeds
// 1 + threshold/100, plus allocs/op regressions where both files recorded
// allocation counts.
func compare(old, new benchFile, thresholdPct float64) (diffs []diff, regressions []diff, onlyOld, onlyNew []string) {
	for name, o := range old.Benchmarks {
		n, ok := new.Benchmarks[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		d := diff{Name: name, Old: o.NsPerOp, New: n.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp}
		if o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
		}
		diffs = append(diffs, d)
		if d.Ratio > 1+thresholdPct/100 {
			r := d
			r.Dim = "ns/op"
			regressions = append(regressions, r)
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil &&
			allocRegressed(*o.AllocsPerOp, *n.AllocsPerOp, thresholdPct) {
			r := d
			r.Dim = "allocs/op"
			regressions = append(regressions, r)
		}
	}
	for name := range new.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Ratio > diffs[j].Ratio })
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Ratio > regressions[j].Ratio })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return diffs, regressions, onlyOld, onlyNew
}

// filterOnly restricts a file to the named benchmarks (exact matches of
// the comma-separated list). Names absent from the file are returned so
// the caller can fail loudly instead of silently gating on nothing.
func filterOnly(bf benchFile, only []string) (benchFile, []string) {
	kept := benchFile{Benchtime: bf.Benchtime, Benchmarks: map[string]benchEntry{}}
	var missing []string
	for _, name := range only {
		if e, ok := bf.Benchmarks[name]; ok {
			kept.Benchmarks[name] = e
		} else {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return kept, missing
}

// parseOnly splits a comma-separated -only value, dropping empty items.
func parseOnly(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func load(path string) (benchFile, error) {
	var bf benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Benchmarks) == 0 {
		return bf, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return bf, nil
}

func main() {
	var (
		threshold    = flag.Float64("threshold", 25, "fail when new ns/op exceeds old by more than this percentage")
		allowMissing = flag.Bool("allow-missing", false, "tolerate benchmarks present in only one file")
		quiet        = flag.Bool("quiet", false, "print only regressions")
		only         = flag.String("only", "", "comma-separated benchmark names; compare just these (they must exist in the old file)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldBF, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newBF, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if names := parseOnly(*only); len(names) > 0 {
		var missing []string
		if oldBF, missing = filterOnly(oldBF, names); len(missing) > 0 {
			fatal(fmt.Errorf("-only benchmark(s) not in %s: %s", flag.Arg(0), strings.Join(missing, ", ")))
		}
		newBF, _ = filterOnly(newBF, names)
	}

	diffs, regressions, onlyOld, onlyNew := compare(oldBF, newBF, *threshold)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*quiet {
		fmt.Fprintf(w, "benchmark\told ns/op\tnew ns/op\tratio\tallocs/op\n")
		for _, d := range diffs {
			allocs := "-"
			if d.OldAllocs != nil && d.NewAllocs != nil {
				allocs = fmt.Sprintf("%.0f -> %.0f", *d.OldAllocs, *d.NewAllocs)
			}
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.3f\t%s\n", d.Name, d.Old, d.New, d.Ratio, allocs)
		}
		w.Flush()
	}
	for _, name := range onlyOld {
		fmt.Fprintf(os.Stderr, "benchdiff: %s missing from %s\n", name, flag.Arg(1))
	}
	for _, name := range onlyNew {
		fmt.Fprintf(os.Stderr, "benchdiff: %s new in %s\n", name, flag.Arg(1))
	}
	if len(onlyOld) > 0 && !*allowMissing {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d benchmark(s) disappeared (use -allow-missing to tolerate)\n", len(onlyOld))
		os.Exit(1)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s) above %.0f%%:\n", len(regressions), *threshold)
		for _, d := range regressions {
			if d.Dim == "allocs/op" {
				fmt.Fprintf(os.Stderr, "  %s: %.0f -> %.0f allocs/op\n", d.Name, *d.OldAllocs, *d.NewAllocs)
				continue
			}
			fmt.Fprintf(os.Stderr, "  %s: %.0f -> %.0f ns/op (%.2fx)\n", d.Name, d.Old, d.New, d.Ratio)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — %d benchmark(s) within %.0f%% of %s\n", len(diffs), *threshold, flag.Arg(0))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
