// Command profiler builds the full interference model of one workload —
// propagation matrix, heterogeneity mapping policy, and bubble score — and
// prints it, together with the profiling cost the chosen algorithm paid.
//
// Example:
//
//	profiler -workload M.milc -alg binary-optimized -samples 60
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bubble"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/report"

	interference "repro"
)

func main() {
	var (
		name    = flag.String("workload", "M.milc", "workload name")
		algName = flag.String("alg", "binary-optimized", "profiling algorithm: binary-optimized, binary-brute, full-brute, random-30%, random-50%")
		samples = flag.Int("samples", 60, "heterogeneous samples for policy selection")
		nodes   = flag.Int("nodes", 8, "nodes the application spans while profiled")
		seed    = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	env, err := interference.NewPrivateClusterEnv(*seed)
	if err != nil {
		fatal(err)
	}
	w, err := interference.WorkloadByName(*name)
	if err != nil {
		fatal(err)
	}
	cfg := interference.DefaultBuildConfig()
	cfg.Algorithm = alg
	cfg.Samples = *samples
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	model, err := interference.BuildModel(env, w, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload        %s\n", model.Workload)
	fmt.Printf("bubble score    %.2f (paper: %.1f)\n", model.BubbleScore, w.TargetBubbleScore)
	fmt.Printf("best policy     %s (avg err %.2f%%, std %.2f)\n",
		model.Policy, model.Selection.BestStats.AvgPct, model.Selection.BestStats.StdPct)
	fmt.Printf("profiling cost  %.1f%% of settings (%s)\n\n", model.ProfilingCostPct, alg)

	headers := []string{"pressure \\ nodes"}
	for j := 0; j <= *nodes; j++ {
		headers = append(headers, fmt.Sprint(j))
	}
	tb := report.NewTable("Propagation matrix (normalized execution time)", headers...)
	for i := 0; i < bubble.MaxPressure; i++ {
		row := []string{fmt.Sprint(i + 1)}
		for j := 0; j <= *nodes; j++ {
			row = append(row, report.Norm(model.Matrix.Cell(i, j)))
		}
		tb.MustAddRow(row...)
	}
	fmt.Println(tb)

	pol := report.NewTable("Heterogeneity policy errors over sampled configurations",
		"policy", "avg(%)", "std", "min(%)", "max(%)")
	for _, p := range hetero.AllPolicies() {
		st := model.Selection.Stats[p]
		pol.MustAddRow(p.String(), report.F(st.AvgPct, 2), report.F(st.StdPct, 2),
			report.F(st.MinPct, 2), report.F(st.MaxPct, 2))
	}
	fmt.Println(pol)
}

func parseAlg(s string) (core.Algorithm, error) {
	for _, a := range []core.Algorithm{
		core.BinaryOptimized, core.BinaryBrute, core.FullBrute, core.Random30, core.Random50,
	} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profiler:", err)
	os.Exit(1)
}
