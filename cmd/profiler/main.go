// Command profiler builds the full interference model of one workload —
// propagation matrix, heterogeneity mapping policy, and bubble score — and
// prints it, together with the profiling cost the chosen algorithm paid
// and the provenance of every matrix cell (measured, interpolated, or
// inferred).
//
// Examples:
//
//	profiler -workload M.milc -alg binary-optimized -samples 60
//	profiler -workload M.milc -metrics - -trace - -listen :9090
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bubble"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/telemetry"

	interference "repro"
)

// logger is installed by main before any fatal path can run.
var logger = obs.Nop()

func main() {
	var (
		name        = flag.String("workload", "M.milc", "workload name")
		algName     = flag.String("alg", "binary-optimized", "profiling algorithm: binary-optimized, binary-brute, full-brute, random-30%, random-50%")
		samples     = flag.Int("samples", 60, "heterogeneous samples for policy selection")
		nodes       = flag.Int("nodes", 8, "nodes the application spans while profiled")
		seed        = flag.Int64("seed", 1, "experiment seed")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "measurement batch workers (1 = serial; results are identical either way)")
		cachePath   = flag.String("measure-cache", "", "persist the measurement cache to this JSON file (loaded at start, saved at exit)")
		metricsPath = flag.String("metrics", "", "write a JSON RunReport (metrics snapshot) to this file ('-' for stdout)")
		tracePath   = flag.String("trace", "", "write recorded spans as JSON to this file ('-' for stdout)")
		listen      = flag.String("listen", "", "serve the observability plane (/metrics, /healthz, /readyz, /api/*, /debug/pprof/) on this address for the duration of the run, e.g. :9090")
		logFormat   = flag.String("log-format", obs.LogText, "log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	l, err := obs.FlagLogger(*logFormat, *logLevel, "profiler")
	if err != nil {
		fmt.Fprintln(os.Stderr, "profiler:", err)
		os.Exit(1)
	}
	logger = l

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	telemetry.RegisterBuildInfo(reg)
	runReport := telemetry.NewRunReport("profiler", *seed, os.Args[1:])
	out := report.NewReporter(os.Stdout)

	var srv *obs.Server
	var plane *obs.Running
	if *listen != "" {
		srv = obs.New(obs.Options{Registry: reg, Tracer: tracer, Report: runReport, Logger: logger})
		plane, err = srv.Start(*listen)
		if err != nil {
			fatal(err)
		}
		defer func() {
			srv.SetReady(false)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := plane.Shutdown(ctx); err != nil {
				logger.Warn("plane shutdown", "err", err)
			}
		}()
	}

	alg, err := parseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	env, err := interference.NewPrivateClusterEnv(*seed)
	if err != nil {
		fatal(err)
	}
	env.Telemetry = reg
	env.Tracer = tracer
	env.Workers = *workers
	cache := measure.NewCache()
	env.Cache = cache
	if *cachePath != "" {
		if err := cache.LoadFile(*cachePath); err != nil {
			fatal(err)
		}
	}
	w, err := interference.WorkloadByName(*name)
	if err != nil {
		fatal(err)
	}
	cfg := interference.DefaultBuildConfig()
	cfg.Algorithm = alg
	cfg.Samples = *samples
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	cfg.Telemetry = reg
	cfg.Tracer = tracer
	logger.Info("building interference model", "workload", w.Name, "alg", alg.String(), "samples", *samples)
	model, err := interference.BuildModel(env, w, cfg)
	if err != nil {
		fatal(err)
	}
	if srv != nil {
		srv.SetReady(true)
	}
	logger.Info("model built", "workload", model.Workload,
		"bubble_score", model.BubbleScore, "policy", model.Policy.String())
	logger.Info("measurement cache", "hits", cache.Hits(), "misses", cache.Misses(), "entries", cache.Len())
	if *cachePath != "" {
		if err := cache.SaveFile(*cachePath); err != nil {
			fatal(err)
		}
		logger.Info("measurement cache saved", "path", *cachePath)
	}

	out.KV("workload", "%s", model.Workload)
	out.KV("bubble score", "%.2f (paper: %.1f)", model.BubbleScore, w.TargetBubbleScore)
	out.KV("best policy", "%s (avg err %.2f%%, std %.2f)",
		model.Policy, model.Selection.BestStats.AvgPct, model.Selection.BestStats.StdPct)
	out.KV("profiling cost", "%.1f%% of settings (%s)", model.ProfilingCostPct, alg)
	pc := model.Matrix.ProvenanceCounts()
	out.KV("cell provenance", "measured %d, interpolated %d, inferred %d",
		pc["measured"], pc["interpolated"], pc["inferred"])
	out.Blank()

	headers := []string{"pressure \\ nodes"}
	for j := 0; j <= *nodes; j++ {
		headers = append(headers, fmt.Sprint(j))
	}
	tb := report.NewTable("Propagation matrix (normalized execution time)", headers...)
	for i := 0; i < bubble.MaxPressure; i++ {
		row := []string{fmt.Sprint(i + 1)}
		for j := 0; j <= *nodes; j++ {
			row = append(row, report.Norm(model.Matrix.Cell(i, j)))
		}
		tb.MustAddRow(row...)
	}
	out.Table(tb)
	out.Blank()

	pol := report.NewTable("Heterogeneity policy errors over sampled configurations",
		"policy", "avg(%)", "std", "min(%)", "max(%)")
	for _, p := range hetero.AllPolicies() {
		st := model.Selection.Stats[p]
		pol.MustAddRow(p.String(), report.F(st.AvgPct, 2), report.F(st.StdPct, 2),
			report.F(st.MinPct, 2), report.F(st.MaxPct, 2))
	}
	out.Table(pol)

	if err := telemetry.Emit(runReport, reg, tracer, *metricsPath, *tracePath); err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

func parseAlg(s string) (core.Algorithm, error) {
	for _, a := range []core.Algorithm{
		core.BinaryOptimized, core.BinaryBrute, core.FullBrute, core.Random30, core.Random50,
	} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
