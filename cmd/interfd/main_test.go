package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/schedule"
	"repro/internal/telemetry"
)

// startTestDaemon runs the daemon in-process on a free port with a small
// profiling budget and returns its base URL, a cancel func, and the
// channel delivering runDaemon's final error.
func startTestDaemon(t *testing.T, mutate func(*daemonConfig)) (string, context.CancelFunc, chan error, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := defaultDaemonConfig()
	cfg.listen = "127.0.0.1:0"
	cfg.mix = []string{"M.lmps", "C.libq", "H.KM", "N.cg"}
	cfg.samples = 6
	cfg.batch = 6
	cfg.searchIters = 300
	cfg.reportPath = filepath.Join(dir, "report.json")
	cfg.driftAuditPath = filepath.Join(dir, "decisions.jsonl")
	addrCh := make(chan string, 1)
	cfg.notifyAddr = func(a string) { addrCh <- a }
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- runDaemon(ctx, cfg, obs.Nop()) }()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, errCh, cfg.reportPath
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon died before binding: %v", err)
		return "", nil, nil, ""
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never bound its listener")
		return "", nil, nil, ""
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestDaemonObservabilityPlane is the end-to-end acceptance test: readiness
// flips 503 -> 200 after the model build, /metrics serves valid Prometheus
// text with live scheduler counters and build_info, /api/events streams
// convergence samples and job completions, pprof profiles, and shutdown
// drains and writes the final RunReport.
func TestDaemonObservabilityPlane(t *testing.T) {
	base, cancel, errCh, reportPath := startTestDaemon(t, nil)
	defer cancel()

	// Readiness starts 503 while startup profiling runs, then flips.
	if code, _ := get(t, base+"/readyz"); code == http.StatusOK {
		t.Log("daemon became ready before first poll (fast build) — ordering not observable")
	}
	waitFor(t, "/readyz to flip to 200", 30*time.Second, func() bool {
		code, _ := get(t, base+"/readyz")
		return code == http.StatusOK
	})
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}

	// SSE: convergence samples and job completions must both arrive.
	sseCtx, sseCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sseCancel()
	req, err := http.NewRequestWithContext(sseCtx, "GET", base+"/api/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	seen := map[string]bool{}
	reader := bufio.NewReader(resp.Body)
	for !(seen["placement_sample"] && seen["job_completed"]) {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended before both event kinds arrived (saw %v): %v", seen, err)
		}
		if strings.HasPrefix(line, "event: ") {
			seen[strings.TrimSpace(strings.TrimPrefix(line, "event: "))] = true
		}
	}
	sseCancel()

	// Metrics: valid exposition text carrying scheduler and build
	// identity metrics.
	waitFor(t, "scheduler metrics to appear", 30*time.Second, func() bool {
		_, body := get(t, base+"/metrics")
		return strings.Contains(body, schedule.MetricJobsCompleted)
	})
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE " + telemetry.BuildInfoMetric + " gauge",
		"# TYPE placement_iterations_total counter",
		"interfd_rounds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) < 2 {
			t.Errorf("malformed metrics line %q", line)
		}
	}

	// pprof: a one-second CPU profile must come back non-empty.
	profCode, profBody := get(t, base+"/debug/pprof/profile?seconds=1")
	if profCode != http.StatusOK || len(profBody) == 0 {
		t.Errorf("/debug/pprof/profile = %d with %d bytes", profCode, len(profBody))
	}

	// Live report snapshot identifies the daemon.
	_, repBody := get(t, base+"/api/report")
	var rep telemetry.RunReport
	if err := json.Unmarshal([]byte(repBody), &rep); err != nil {
		t.Fatalf("/api/report is not JSON: %v", err)
	}
	if rep.Tool != "interfd" {
		t.Errorf("report tool = %q", rep.Tool)
	}

	// Graceful shutdown: cancel, drain, final report on disk.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var final telemetry.RunReport
	if err := json.Unmarshal(raw, &final); err != nil {
		t.Fatalf("final report is not JSON: %v", err)
	}
	if final.Tool != "interfd" || final.WallSeconds <= 0 {
		t.Errorf("final report = tool %q, wall %v", final.Tool, final.WallSeconds)
	}
	if final.Metrics.Counters["interfd_rounds_total"] == 0 {
		t.Error("final report records zero completed rounds")
	}
}

// TestDaemonBoundedRounds runs a fixed round budget to completion without
// any signal and checks the loop terminates by itself.
func TestDaemonBoundedRounds(t *testing.T) {
	base, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.rounds = 2
	})
	defer cancel()
	_ = base
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("bounded daemon never finished")
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if got := rep.Metrics.Counters["interfd_rounds_total"]; got != 2 {
		t.Errorf("rounds = %d, want 2", got)
	}
	if rep.Metrics.Counters[schedule.MetricJobsCompleted] == 0 {
		t.Error("no jobs completed across the bounded run")
	}
}

// TestDaemonSpeculativeExchangeTelemetry runs bounded rounds with the
// hierarchical search in speculative mode and checks the exchange-phase
// telemetry — proposals, accepted, conflicts, batch occupancy — lands in
// the final RunReport.
func TestDaemonSpeculativeExchangeTelemetry(t *testing.T) {
	_, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.rounds = 2
		c.searchCells = 4
		c.searchExWorkers = 4
	})
	defer cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("bounded daemon never finished")
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if got := rep.Metrics.Counters[placement.MetricExchangeProposals]; got == 0 {
		t.Error("no exchange proposals recorded in the report")
	}
	if _, ok := rep.Metrics.Counters[placement.MetricExchangeAccepted]; !ok {
		t.Errorf("%s missing from the report", placement.MetricExchangeAccepted)
	}
	if _, ok := rep.Metrics.Counters[placement.MetricExchangeConflicts]; !ok {
		t.Errorf("%s missing from the report", placement.MetricExchangeConflicts)
	}
	occ, ok := rep.Metrics.Gauges[placement.MetricExchangeBatchOccupancy]
	if !ok {
		t.Fatalf("%s missing from the report", placement.MetricExchangeBatchOccupancy)
	}
	if occ < 0 || occ > 1 {
		t.Errorf("batch occupancy %v outside [0, 1]", occ)
	}
}
