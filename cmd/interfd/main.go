// Command interfd is the long-running interference-management daemon: it
// profiles a workload mix once at startup, then drives a continuous stream
// of scheduling rounds — each round draws a fresh Poisson job stream, runs
// a placement-search sweep for the current mix, and executes the stream
// through the online cluster manager on the ground-truth simulator — while
// serving the live observability plane (Prometheus /metrics, health and
// readiness probes, /api/report, /api/spans, an SSE event stream, and
// pprof) the whole time.
//
// The same listener also serves placement as a service: POST /api/place
// runs the interference-aware search for an arbitrary app mix (batched
// through an admission queue), POST /api/whatif scores one concrete
// placement, and /api/slo reports the latency-SLO burn rate. With
// -serve-only the round loop is skipped and the daemon is purely an API
// server.
//
// SIGINT/SIGTERM shut it down gracefully: the in-flight round drains, a
// final RunReport is written to -report, and the HTTP plane stops.
//
// Examples:
//
//	interfd -listen :8080
//	interfd -listen :8080 -policy pack-first -rounds 10 -report -
//	interfd -listen :8080 -serve-only -slo-target 0.25
//	curl localhost:8080/readyz; curl localhost:8080/metrics
//	curl -XPOST -d '{"apps":[{"app":"M.lmps","units":4}]}' localhost:8080/api/place
//	curl -N localhost:8080/api/events
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/fault"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/schedule"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/workloads"

	interference "repro"
)

// daemonConfig collects every tunable of the daemon loop so tests can run
// it in-process.
type daemonConfig struct {
	listen           string
	seed             int64
	policy           schedule.Policy
	mix              []string
	units            int
	hosts, slots     int
	jobUnits         int
	batch            int
	rounds           int // 0 = run until the context is cancelled
	meanInterarrival float64
	workMin, workMax float64
	qosFraction      float64
	qosBound         float64
	samples          int // heterogeneity samples per model build
	workers          int // measurement batch workers (0 = GOMAXPROCS)
	searchIters      int // placement-search iterations per round
	searchRestarts   int // parallel annealing restarts per round
	searchCells      int // hierarchical-search cells (0 = adaptive, 1 = flat search)
	searchExchange   int // cross-cell exchange proposals (0 = searchIters)
	searchExWorkers  int // speculative exchange evaluators (0/1 = serial)
	seriesCap        int // retained points per convergence series
	roundPause       time.Duration
	reportPath       string
	tracePath        string
	faultsPath       string        // JSON fault plan to inject ("" = none)
	profileRetries   int           // extra build attempts after the first
	profileBackoff   time.Duration // initial retry backoff, doubled per attempt
	profileTimeout   time.Duration // per-attempt build timeout (0 = none)

	// Drift observability (internal/drift): residual tracking thresholds
	// and the decision audit log.
	driftAlpha      float64 // EWMA learning rate for residuals
	driftThreshold  float64 // relative residual beyond which a cell drifts
	driftStaleAfter int     // rounds without confirmation before a cell is stale
	driftMinObs     int     // per-app warm-up before drift events fire
	driftAuditPath  string  // JSONL decision audit file ("" = none)
	driftAuditCap   int     // decision records retained in the ring

	// Placement-as-a-service plane (internal/serve) and its latency SLO.
	serveOnly      bool          // skip the round loop; serve the API until signalled
	addrFile       string        // write the bound listen address to this file ("" = none)
	serveQueue     int           // admission-queue depth
	serveBatch     int           // max requests per dispatcher batch
	sloTarget      float64       // end-to-end latency SLO target, seconds
	sloBudget      float64       // error budget (violating fraction allowed)
	sloWindow      int           // sliding-window size, requests (test hook)
	sloMinRequests int           // observations before breaches may fire (test hook)
	sloCooldown    time.Duration // min gap between breach events (test hook)

	// notifyAddr, when non-nil, receives the bound listen address once
	// the plane is up (test hook).
	notifyAddr func(string)
}

func defaultDaemonConfig() daemonConfig {
	return daemonConfig{
		listen: ":8080", seed: 1,
		policy: schedule.ModelDriven,
		mix:    []string{"M.lmps", "C.libq", "H.KM", "N.cg"},
		units:  4, hosts: 8, slots: 2,
		jobUnits: 2, batch: 10, rounds: 0,
		meanInterarrival: 30, workMin: 20, workMax: 90,
		qosFraction: 0.25, qosBound: 1.25,
		samples: 15, searchIters: 600, searchRestarts: 1, seriesCap: 4096,
		roundPause:     0,
		reportPath:     "interfd-report.json",
		profileRetries: 3, profileBackoff: 50 * time.Millisecond,
		driftAlpha:      drift.DefaultConfig().Alpha,
		driftThreshold:  drift.DefaultConfig().ResidualThreshold,
		driftStaleAfter: drift.DefaultConfig().StaleAfter,
		driftMinObs:     drift.DefaultConfig().MinObservations,
		driftAuditPath:  "interfd-decisions.jsonl",
		driftAuditCap:   drift.DefaultAuditCap,
		serveQueue:      64,
		serveBatch:      8,
		sloTarget:       obs.DefaultSLOConfig().TargetSeconds,
		sloBudget:       obs.DefaultSLOConfig().Budget,
		sloWindow:       obs.DefaultSLOConfig().Window,
		sloMinRequests:  obs.DefaultSLOConfig().MinRequests,
		sloCooldown:     obs.DefaultSLOConfig().Cooldown,
	}
}

func main() {
	cfg := defaultDaemonConfig()
	var (
		listen    = flag.String("listen", cfg.listen, "observability plane address (/metrics, /healthz, /readyz, /api/*, /debug/pprof/)")
		seed      = flag.Int64("seed", cfg.seed, "experiment seed")
		policyStr = flag.String("policy", cfg.policy.String(), "scheduling policy: model-driven, random-fit, pack-first")
		mixCSV    = flag.String("mix", strings.Join(cfg.mix, ","), "comma-separated workload mix to profile and stream")
		jobUnits  = flag.Int("job-units", cfg.jobUnits, "units per streamed job")
		batch     = flag.Int("batch", cfg.batch, "jobs per scheduling round")
		rounds    = flag.Int("rounds", cfg.rounds, "rounds to run (0 = until SIGINT/SIGTERM)")
		interarr  = flag.Float64("mean-interarrival", cfg.meanInterarrival, "Poisson mean gap between job arrivals, simulated seconds")
		qosFrac   = flag.Float64("qos-fraction", cfg.qosFraction, "fraction of jobs carrying a QoS bound")
		qosBound  = flag.Float64("qos-bound", cfg.qosBound, "QoS bound on normalized execution time")
		samples   = flag.Int("profile-samples", cfg.samples, "heterogeneity samples per startup model build")
		workers   = flag.Int("workers", cfg.workers, "measurement batch workers (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
		iters     = flag.Int("search-iters", cfg.searchIters, "placement-search iterations per round")
		restarts  = flag.Int("search-restarts", cfg.searchRestarts, "independent annealing restarts per round, run in parallel")
		scells    = flag.Int("search-cells", cfg.searchCells, "shard hosts into this many cells for the hierarchical search (0 = size adaptively from the host count, 1 = flat)")
		sexchange = flag.Int("search-exchange", cfg.searchExchange, "cross-cell exchange proposals after the cell phase (0 = search-iters; needs -search-cells > 1)")
		sexworker = flag.Int("search-exchange-workers", cfg.searchExWorkers, "speculative exchange evaluators (0/1 = serial; >1 needs -search-cells > 1)")
		pause     = flag.Duration("round-pause", cfg.roundPause, "wall-clock pause between rounds")
		faults    = flag.String("faults", "", "JSON fault plan to inject (node crashes, degrades, profile-cell loss, transient profiling failures)")
		pRetries  = flag.Int("profile-retries", cfg.profileRetries, "extra model-build attempts per workload before dropping it")
		pBackoff  = flag.Duration("profile-backoff", cfg.profileBackoff, "initial backoff between model-build retries, doubled per attempt")
		pTimeout  = flag.Duration("profile-timeout", cfg.profileTimeout, "per-attempt model-build timeout (0 = none)")
		dAlpha    = flag.Float64("drift-alpha", cfg.driftAlpha, "EWMA learning rate for model-drift residual tracking, in (0,1]")
		dThresh   = flag.Float64("drift-threshold", cfg.driftThreshold, "relative residual beyond which a matrix cell or app counts as drifting")
		dStale    = flag.Int("drift-stale-after", cfg.driftStaleAfter, "rounds without a confirming observation before a cell counts stale")
		dMinObs   = flag.Int("drift-min-obs", cfg.driftMinObs, "per-app observations before drift events may fire")
		dAudit    = flag.String("drift-audit", cfg.driftAuditPath, "write the placement decision audit log (JSON Lines) to this file at drain ('' = none)")
		dAuditCap = flag.Int("drift-audit-cap", cfg.driftAuditCap, "decision records retained in the audit ring buffer")
		serveOnly = flag.Bool("serve-only", cfg.serveOnly, "skip the round loop: profile, arm the placement API, and serve until SIGINT/SIGTERM")
		addrFile  = flag.String("addr-file", cfg.addrFile, "write the bound listen address to this file once the plane is up")
		srvQueue  = flag.Int("serve-queue", cfg.serveQueue, "placement API admission-queue depth (full queue answers 429)")
		srvBatch  = flag.Int("serve-batch", cfg.serveBatch, "max placement requests executed per dispatcher batch")
		sloTarget = flag.Float64("slo-target", cfg.sloTarget, "placement API latency SLO target, seconds")
		sloBudget = flag.Float64("slo-budget", cfg.sloBudget, "placement API error budget: allowed violating request fraction in (0,1)")
		report    = flag.String("report", cfg.reportPath, "write the final JSON RunReport to this file ('-' for stdout)")
		trace     = flag.String("trace", "", "write recorded spans as JSON to this file at exit ('-' for stdout)")
		logFormat = flag.String("log-format", obs.LogText, "log format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	logger, err := obs.FlagLogger(*logFormat, *logLevel, "interfd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "interfd:", err)
		os.Exit(1)
	}

	cfg.listen, cfg.seed, cfg.mix = *listen, *seed, strings.Split(*mixCSV, ",")
	cfg.jobUnits, cfg.batch, cfg.rounds = *jobUnits, *batch, *rounds
	cfg.meanInterarrival, cfg.qosFraction, cfg.qosBound = *interarr, *qosFrac, *qosBound
	cfg.samples, cfg.searchIters, cfg.roundPause = *samples, *iters, *pause
	cfg.workers = *workers
	cfg.searchRestarts = *restarts
	cfg.searchCells, cfg.searchExchange = *scells, *sexchange
	cfg.searchExWorkers = *sexworker
	cfg.reportPath, cfg.tracePath = *report, *trace
	cfg.faultsPath = *faults
	cfg.profileRetries, cfg.profileBackoff, cfg.profileTimeout = *pRetries, *pBackoff, *pTimeout
	cfg.driftAlpha, cfg.driftThreshold = *dAlpha, *dThresh
	cfg.driftStaleAfter, cfg.driftMinObs = *dStale, *dMinObs
	cfg.driftAuditPath, cfg.driftAuditCap = *dAudit, *dAuditCap
	cfg.serveOnly, cfg.addrFile = *serveOnly, *addrFile
	cfg.serveQueue, cfg.serveBatch = *srvQueue, *srvBatch
	cfg.sloTarget, cfg.sloBudget = *sloTarget, *sloBudget
	switch *policyStr {
	case schedule.ModelDriven.String():
		cfg.policy = schedule.ModelDriven
	case schedule.RandomFit.String():
		cfg.policy = schedule.RandomFit
	case schedule.PackFirst.String():
		cfg.policy = schedule.PackFirst
	default:
		logger.Error("unknown policy", "policy", *policyStr)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runDaemon(ctx, cfg, logger); err != nil {
		logger.Error("daemon failed", "err", err)
		os.Exit(1)
	}
}

// runDaemon is the whole daemon lifecycle: observability plane up, models
// built, readiness flipped, round loop until ctx cancels or the round
// budget is spent, then graceful drain and the final report.
func runDaemon(ctx context.Context, cfg daemonConfig, logger *slog.Logger) error {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	telemetry.RegisterBuildInfo(reg)
	bus := obs.NewBus(obs.DefaultBusBuffer)
	runReport := telemetry.NewRunReport("interfd", cfg.seed, os.Args[1:])

	// Drift observability: the tracker and decision audit log exist before
	// the HTTP plane starts so /api/drift, /api/decisions and the report's
	// drift section are race-free from the first request.
	dcfg := drift.DefaultConfig()
	dcfg.Alpha = cfg.driftAlpha
	dcfg.ResidualThreshold = cfg.driftThreshold
	dcfg.StaleAfter = cfg.driftStaleAfter
	dcfg.MinObservations = cfg.driftMinObs
	tracker, err := drift.New(dcfg, reg)
	if err != nil {
		return err
	}
	audit := drift.NewAuditLog(cfg.driftAuditCap)
	runReport.SetDriftSource(tracker.SnapshotAny)

	// finish flushes the decision audit (tmp+rename, so SIGTERM never
	// leaves a truncated log) and writes the final report; every daemon
	// exit path funnels through it.
	finish := func() error {
		if err := audit.SaveFile(cfg.driftAuditPath); err != nil {
			logger.Warn("decision audit flush failed", "path", cfg.driftAuditPath, "err", err)
		} else if cfg.driftAuditPath != "" {
			logger.Info("decision audit written", "path", cfg.driftAuditPath,
				"records", audit.Len(), "evicted", audit.Dropped())
		}
		return telemetry.Emit(runReport, reg, tracer, cfg.reportPath, cfg.tracePath)
	}

	// Placement-as-a-service: the latency SLO tracker, the process-health
	// collector, and the service itself exist before the HTTP plane starts
	// so /api/place, /api/whatif, /api/slo and the process_* gauges are
	// mounted from the first request. The service answers 503 until the
	// startup models arm its backend below.
	scfg := obs.SLOConfig{
		TargetSeconds: cfg.sloTarget, Budget: cfg.sloBudget,
		Window: cfg.sloWindow, MinRequests: cfg.sloMinRequests,
		BurnThreshold: 1, Cooldown: cfg.sloCooldown,
	}
	slo, err := obs.NewSLOTracker(scfg, reg, bus)
	if err != nil {
		return err
	}
	svc, err := serve.New(serve.Config{
		NumHosts: cfg.hosts, SlotsPerHost: cfg.slots,
		Seed:       cfg.seed,
		Iterations: cfg.searchIters, Restarts: cfg.searchRestarts,
		QueueDepth: cfg.serveQueue, MaxBatch: cfg.serveBatch,
		Workers:   cfg.workers,
		Telemetry: reg, Tracer: tracer, SLO: slo, Logger: logger,
	})
	if err != nil {
		return err
	}

	srv := obs.New(obs.Options{
		Registry: reg, Tracer: tracer, Bus: bus, Report: runReport, Logger: logger,
		DriftSnapshot:  tracker.SnapshotAny,
		DecisionsJSONL: audit.WriteJSONL,
		SLOSnapshot:    func() any { return slo.Snapshot() },
		Runtime:        obs.NewRuntimeCollector(reg),
		Routes:         svc.Routes(),
	})
	running, err := srv.Start(cfg.listen)
	if err != nil {
		svc.Close()
		return err
	}
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := running.Shutdown(shutCtx); err != nil {
			logger.Warn("plane shutdown", "err", err)
		}
	}()
	defer svc.Close() // reject queued placements before the plane drains
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(running.Addr+"\n"), 0o644); err != nil {
			return fmt.Errorf("interfd: write addr file: %w", err)
		}
	}
	if cfg.notifyAddr != nil {
		cfg.notifyAddr(running.Addr)
	}

	// Fault plan: load, wire the injector to the bus, and activate the
	// round-0 faults before profiling so crashes, degrades and transient
	// profiling failures shape the startup phase too.
	var inj *fault.Injector
	if cfg.faultsPath != "" {
		plan, err := fault.LoadPlan(cfg.faultsPath)
		if err != nil {
			return err
		}
		inj, err = fault.New(plan, reg)
		if err != nil {
			return err
		}
		inj.OnEvent = func(f fault.Fault) {
			logger.Warn("fault injected", "kind", f.Kind.String(), "host", f.Host,
				"factor", f.Factor, "fraction", f.Fraction, "rate", f.Rate, "round", f.Round)
			bus.Publish("fault_injected", f)
		}
		inj.Activate(0)
	}

	// Startup profiling: one interference model per mix workload. The
	// daemon is alive (/healthz) but not ready (/readyz 503) until the
	// surviving models are built. Under an active fault plan, each build
	// retries with exponential backoff; a workload whose builds keep
	// failing is dropped (counted, logged) rather than crashing the
	// daemon, and a lossy matrix is wrapped in a resilient predictor that
	// falls back to the naive proportional model on lost cells.
	env, err := interference.NewPrivateClusterEnv(cfg.seed)
	if err != nil {
		return err
	}
	env.Telemetry = reg
	env.Tracer = tracer
	env.Workers = cfg.workers
	// The content cache memoizes repeated profiling settings across the
	// mix; it disables itself automatically while host degradation from an
	// active fault plan could change measured values.
	env.Cache = measure.NewCache()
	if inj != nil {
		env.HostDegrade = inj.DegradeFactor
		env.FailureHook = inj.FailureHook // profiling phase only; cleared below
	}

	retriesC := reg.Counter("interfd_profile_retries_total")
	droppedC := reg.Counter("interfd_workloads_dropped_total")
	preds := map[string]core.Predictor{}
	models := map[string]*core.Model{}
	scores := map[string]float64{}
	mixWorkloads := make([]workloads.Workload, 0, len(cfg.mix))
	bcfg := interference.DefaultBuildConfig()
	bcfg.Samples = cfg.samples
	bcfg.Seed = cfg.seed
	bcfg.Telemetry = reg
	bcfg.Tracer = tracer
	for _, raw := range cfg.mix {
		name := strings.TrimSpace(raw)
		w, err := interference.WorkloadByName(name)
		if err != nil {
			return err
		}
		t0 := time.Now()
		m, err := buildModelWithRetry(ctx, cfg, env, w, bcfg, retriesC, logger)
		if err != nil {
			droppedC.Inc()
			logger.Warn("workload dropped after persistent profiling failure",
				"workload", name, "err", err)
			bus.Publish("workload_dropped", map[string]any{"workload": name, "err": err.Error()})
			continue
		}
		obs.WithSpan(logger, "core.build-model/"+name, tracer.Total()).
			Info("model built", "workload", name, "bubble_score", m.BubbleScore,
				"wall", time.Since(t0).Round(time.Millisecond).String())
		preds[name] = m
		models[name] = m
		scores[name] = m.BubbleScore
		if m.Matrix != nil {
			if err := tracker.Register(name, m.Matrix.Pressures, m.Matrix.Nodes, 0); err != nil {
				logger.Warn("drift registration failed", "workload", name, "err", err)
			}
		}
		if inj != nil {
			// The naive fallback needs only the analytic sensitivity curve,
			// so its construction cannot be hit by the failure hook.
			if p, err := resilientPredictor(inj, env, w, m, bcfg.Nodes, reg, logger); err == nil {
				preds[name] = p
			} else {
				logger.Warn("naive fallback unavailable; using lossless model", "workload", name, "err", err)
			}
		}
		mixWorkloads = append(mixWorkloads, w)
		if ctx.Err() != nil {
			logger.Info("shutdown during startup profiling")
			return finish()
		}
	}
	env.FailureHook = nil // transient profiling failures target profiling only
	if len(preds) == 0 {
		logger.Error("every workload dropped during profiling; draining")
		return finish()
	}
	// Arm the placement API with the startup models: /api/place and
	// /api/whatif flip from 503 to live along with /readyz.
	svc.SetBackend(serve.Backend{Predictors: preds, Scores: scores})
	srv.SetReady(true)
	logger.Info("ready", "addr", running.Addr, "policy", cfg.policy.String(),
		"mix", strings.Join(cfg.mix, ","))

	if cfg.serveOnly {
		logger.Info("serve-only mode: placement API live, round loop disabled")
		<-ctx.Done()
		srv.SetReady(false)
		if err := finish(); err != nil {
			return err
		}
		logger.Info("final report written", "path", cfg.reportPath, "spans", tracer.Total())
		return nil
	}

	roundsC := reg.Counter("interfd_rounds_total")
	roundSecs := reg.Histogram("interfd_round_wall_seconds", telemetry.ExpBuckets(0.01, 2, 12))
	uptime := reg.Gauge("interfd_uptime_seconds")
	start := time.Now()

	spec := schedule.StreamSpec{
		MeanInterarrival: cfg.meanInterarrival,
		Jobs:             cfg.batch,
		Units:            cfg.jobUnits,
		WorkMin:          cfg.workMin,
		WorkMax:          cfg.workMax,
		QoSFraction:      cfg.qosFraction,
		QoSBound:         cfg.qosBound,
	}
	for _, w := range mixWorkloads {
		spec.Mix = append(spec.Mix, schedule.MixEntry{Workload: w, Weight: 1})
	}

	mixReg := make(map[string]workloads.Workload, len(mixWorkloads))
	for _, w := range mixWorkloads {
		mixReg[w.Name] = w
	}
	dp := &driftPlane{
		tracker: tracker, audit: audit,
		models: models, mixReg: mixReg,
		hosts: cfg.hosts, inj: inj,
	}

	for round := 0; cfg.rounds == 0 || round < cfg.rounds; round++ {
		if ctx.Err() != nil {
			logger.Info("draining complete, shutting down", "rounds", round)
			break
		}
		var downs []int
		if inj != nil {
			inj.Activate(round) // late-round crashes/degrades arm here
			downs = inj.DownHosts()
		}
		t0 := time.Now()
		if err := runRound(cfg, round, env, preds, scores, spec, downs, dp, reg, tracer, bus, logger); err != nil {
			return err
		}
		roundsC.Inc()
		roundSecs.Observe(time.Since(t0).Seconds())
		uptime.Set(time.Since(start).Seconds())
		// Convergence series are append-only; cap them so a long-running
		// daemon's registry (and /api/report) stays bounded.
		reg.TrimSeries(cfg.seriesCap)
		bus.Publish("round_done", map[string]any{
			"round": round, "wall_seconds": time.Since(t0).Seconds(),
		})
		if cfg.roundPause > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(cfg.roundPause):
			}
		}
	}

	srv.SetReady(false)
	if err := finish(); err != nil {
		return err
	}
	logger.Info("final report written", "path", cfg.reportPath,
		"rounds", roundsC.Value(), "spans", tracer.Total())
	return nil
}

// driftPlane bundles the model-drift observability state runRound feeds:
// the residual tracker, the decision audit log, the raw (unwrapped) models
// whose heterogeneity policies map pressure vectors to matrix coordinates,
// and the workload registry ground-truth measurement needs.
type driftPlane struct {
	tracker *drift.Tracker
	audit   *drift.AuditLog
	models  map[string]*core.Model
	mixReg  map[string]workloads.Workload
	hosts   int
	inj     *fault.Injector
}

// observeRound closes the prediction loop for one placement round: it
// measures what the chosen placement actually does on the ground-truth
// simulator, feeds each application's (predicted, observed) pair into the
// drift tracker at the matrix coordinates the prediction used, fires any
// drift events onto the bus, and appends the round's decision record to
// the audit log.
func (dp *driftPlane) observeRound(round int, res placement.Result, env *interference.Env,
	scores map[string]float64, downs []int, predHits, predMisses uint64,
	bus *obs.Bus, logger *slog.Logger) {

	actual, err := env.RunPlacement(res.Placement, dp.mixReg)
	if err != nil {
		// The observation plane must never take the daemon down; record
		// the decision without observed values.
		logger.Warn("drift ground-truth measurement failed", "round", round, "err", err)
		actual = nil
	}

	dec := drift.Decision{
		Round:      round,
		Assignment: map[string][]string{},
		Objective:  res.Objective, Evaluations: res.Evaluations,
		QoSSatisfied:  res.QoSSatisfied,
		Predicted:     map[string]float64{},
		PredCacheHits: predHits, PredCacheMisses: predMisses,
	}
	if len(downs) > 0 {
		dec.DownHosts = append([]int(nil), downs...)
	}
	if dp.inj != nil {
		for h := 0; h < dp.hosts; h++ {
			if f := dp.inj.DegradeFactor(h); f > 1 {
				if dec.DegradedHosts == nil {
					dec.DegradedHosts = map[int]float64{}
				}
				dec.DegradedHosts[h] = f
			}
		}
		for _, n := range dp.inj.Counts() {
			dec.FaultEvents += n
		}
	}

	names := make([]string, 0, len(res.Predicted))
	for name := range res.Predicted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		predicted := res.Predicted[name]
		dec.Predicted[name] = predicted
		for _, up := range res.Placement.UnitPositions(name) {
			dec.Assignment[name] = append(dec.Assignment[name], fmt.Sprintf("%d:%d", up.Host, up.Slot))
		}
		out, ok := actual[name]
		if !ok {
			continue
		}
		if dec.Observed == nil {
			dec.Observed = map[string]float64{}
			dec.Residuals = map[string]float64{}
		}
		dec.Observed[name] = out.Normalized
		if predicted > 0 {
			dec.Residuals[name] = (out.Normalized - predicted) / predicted
		}
		m := dp.models[name]
		if m == nil || m.Matrix == nil {
			continue
		}
		ps, err := core.PressuresFor(res.Placement, name, scores)
		if err != nil {
			logger.Warn("drift pressure vector failed", "app", name, "err", err)
			continue
		}
		p, cnt, err := m.Policy.Convert(ps)
		if err != nil {
			logger.Warn("drift coordinate conversion failed", "app", name, "err", err)
			continue
		}
		if err := dp.tracker.Observe(name, p, cnt, predicted, out.Normalized, round); err != nil {
			logger.Warn("drift observation rejected", "app", name, "err", err)
		}
	}

	events := dp.tracker.EndRound(round)
	for _, ev := range events {
		logger.Warn("model drift detected", "app", ev.App, "reason", ev.Reason,
			"recent_abs_residual", ev.RecentAbsResidual,
			"stale_cells", ev.StaleCells, "recommended_cells", len(ev.Cells),
			"round", ev.Round)
		bus.Publish("drift_detected", ev)
	}
	dec.DriftEvents = events
	dp.audit.Append(dec)
}

// runRound performs one scheduling round: a placement-search sweep over
// the full mix (streaming convergence samples to the bus), then a fresh
// Poisson job stream through the online cluster manager (streaming job
// lifecycle events).
func runRound(cfg daemonConfig, round int, env *interference.Env,
	preds map[string]core.Predictor, scores map[string]float64,
	spec schedule.StreamSpec, downs []int, dp *driftPlane,
	reg *telemetry.Registry, tracer *telemetry.Tracer,
	bus *obs.Bus, logger *slog.Logger) error {

	span := tracer.StartSpan(fmt.Sprintf("interfd.round/%d", round))
	defer span.End()

	// Crashed hosts shrink the cluster: per-app units contract to what
	// the surviving slots can hold, and both the sweep and the online
	// manager are told to avoid the down hosts.
	surviving := (cfg.hosts - len(downs)) * cfg.slots
	names := make([]string, 0, len(preds))
	for name := range preds {
		names = append(names, name)
	}
	sort.Strings(names)
	units := cfg.units
	if len(names) > 0 && units > surviving/len(names) {
		units = surviving / len(names)
	}
	if units < 1 || cfg.jobUnits > surviving {
		logger.Warn("surviving capacity too small for this round; skipping",
			"round", round, "surviving_slots", surviving, "down_hosts", len(downs))
		bus.Publish("round_skipped", map[string]any{"round": round, "surviving_slots": surviving})
		return nil
	}

	// Placement-search sweep: the reference "best consolidation" of the
	// current mix, recomputed with a round-specific seed so the stream of
	// convergence samples keeps moving.
	demands := make([]cluster.Demand, 0, len(names))
	for _, name := range names {
		demands = append(demands, cluster.Demand{App: name, Units: units})
	}
	req := placement.Request{
		NumHosts: cfg.hosts, SlotsPerHost: cfg.slots,
		Demands: demands, Predictors: preds, Scores: scores,
		DownHosts: downs,
	}
	pcfg := placement.DefaultConfig(cfg.seed + int64(round))
	pcfg.Iterations = cfg.searchIters
	pcfg.Restarts = cfg.searchRestarts
	if pcfg.Restarts <= 0 {
		pcfg.Restarts = 1
	}
	pcfg.Cells = cfg.searchCells
	if cfg.searchCells == 0 {
		pcfg.Cells = placement.AdaptiveCells(cfg.hosts, runtime.GOMAXPROCS(0))
	}
	pcfg.ExchangeIters = cfg.searchExchange
	pcfg.ExchangeWorkers = cfg.searchExWorkers
	pcfg.Telemetry = reg
	pcfg.Tracer = tracer
	pcfg.OnProgress = func(s placement.ProgressSample) {
		if s.Step%25 == 0 {
			bus.Publish("placement_sample", s)
		}
	}
	hits0 := reg.Counter(placement.MetricPredCacheHits).Value()
	misses0 := reg.Counter(placement.MetricPredCacheMisses).Value()
	res, err := placement.Search(req, pcfg)
	if err != nil {
		return fmt.Errorf("interfd: round %d search: %w", round, err)
	}
	cluster.RecordOccupancy(reg, res.Placement)
	bus.Publish("placement_done", map[string]any{
		"round": round, "objective": res.Objective, "evaluations": res.Evaluations,
	})

	// Close the prediction loop: measure the chosen placement on the
	// ground-truth simulator and feed residuals to the drift tracker and
	// the decision audit.
	if dp != nil {
		dp.observeRound(round, res, env, scores, downs,
			reg.Counter(placement.MetricPredCacheHits).Value()-hits0,
			reg.Counter(placement.MetricPredCacheMisses).Value()-misses0,
			bus, logger)
	}

	// Job stream through the online cluster manager.
	jobs, err := schedule.Generate(spec, cfg.seed+int64(round))
	if err != nil {
		return fmt.Errorf("interfd: round %d stream: %w", round, err)
	}
	scfg := schedule.Config{
		NumHosts: cfg.hosts, SlotsPerHost: cfg.slots,
		Policy: cfg.policy, Predictors: preds, Scores: scores,
		Seed:      cfg.seed + int64(round),
		DownHosts: downs,
		Telemetry: reg,
		OnEvent: func(ev schedule.Event) {
			bus.Publish(ev.Kind.String(), ev)
		},
	}
	sres, err := schedule.Run(env, scfg, jobs)
	if err != nil {
		return fmt.Errorf("interfd: round %d schedule: %w", round, err)
	}
	logger.Debug("round complete", "round", round,
		"jobs", len(sres.Outcomes), "makespan", sres.Makespan,
		"mean_stretch", sres.MeanStretch, "qos_violations", sres.QoSViolations,
		"search_objective", res.Objective)
	return nil
}

// buildModelWithRetry builds the interference model for w, retrying
// transient profiling failures up to cfg.profileRetries extra times with
// exponential backoff and an optional per-attempt timeout.
func buildModelWithRetry(ctx context.Context, cfg daemonConfig, env *interference.Env,
	w workloads.Workload, bcfg interference.BuildConfig,
	retries *telemetry.Counter, logger *slog.Logger) (*core.Model, error) {

	backoff := cfg.profileBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= cfg.profileRetries; attempt++ {
		if attempt > 0 {
			retries.Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		m, err := buildModelOnce(env, w, bcfg, cfg.profileTimeout)
		if err == nil {
			return m, nil
		}
		lastErr = err
		logger.Warn("model build attempt failed", "workload", w.Name,
			"attempt", attempt+1, "err", err)
	}
	return nil, fmt.Errorf("interfd: model for %s: %w", w.Name, lastErr)
}

// buildModelOnce runs one build attempt, bounded by timeout when set.
// A timed-out build keeps running in its abandoned goroutine until it
// finishes on its own — the simulator cannot be cancelled mid-measurement
// — but its result is discarded.
func buildModelOnce(env *interference.Env, w workloads.Workload,
	bcfg interference.BuildConfig, timeout time.Duration) (*core.Model, error) {

	if timeout <= 0 {
		return interference.BuildModel(env, w, bcfg)
	}
	type result struct {
		m   *core.Model
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := interference.BuildModel(env, w, bcfg)
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("interfd: model build for %s timed out after %s", w.Name, timeout)
	}
}

// resilientPredictor applies the plan's profile-cell loss to the model's
// matrix and, when cells were actually lost, wraps the partial model with
// the naive proportional fallback so every query still answers (counted
// in model_fallback_total).
func resilientPredictor(inj *fault.Injector, env *interference.Env,
	w workloads.Workload, m *core.Model, nodes int,
	reg *telemetry.Registry, logger *slog.Logger) (core.Predictor, error) {

	lossy := inj.ApplyCellLoss(m.Matrix, w.Name)
	if lossy == m.Matrix {
		return m, nil
	}
	naive, err := interference.BuildNaiveModel(env, w, nodes)
	if err != nil {
		return nil, err
	}
	lm := *m
	lm.Matrix = lossy
	logger.Info("profile cells lost; naive fallback armed", "workload", w.Name,
		"fraction", inj.CellLossFraction())
	return core.NewResilient(w.Name, core.Partial{M: &lm}, naive, reg), nil
}
