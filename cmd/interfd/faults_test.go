package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// writePlan marshals a fault plan into a temp file for the -faults flag.
func writePlan(t *testing.T, plan fault.Plan) string {
	t.Helper()
	raw, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonSurvivesFaultPlan is the fault-injection acceptance test: with
// two node crashes and 20% profile-cell loss at seed 1, the daemon must
// complete its rounds and exit zero, /metrics must export a positive
// model_fallback_total and per-kind fault_injected_total, and every
// surviving workload keeps a working predictor.
func TestDaemonSurvivesFaultPlan(t *testing.T) {
	plan := fault.Plan{
		Seed: 1,
		Faults: []fault.Fault{
			{Kind: fault.NodeCrash, Host: 2},
			{Kind: fault.NodeCrash, Host: 5},
			{Kind: fault.ProfileCellLoss, Fraction: 0.2},
		},
	}
	// Pause between rounds so the metrics surface stays scrapeable while
	// the faulted daemon is still alive (the rounds themselves are fast).
	base, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.faultsPath = writePlan(t, plan)
		c.rounds = 2
		c.roundPause = 150 * time.Millisecond
	})
	defer cancel()

	waitFor(t, "fault metrics on /metrics", 30*time.Second, func() bool {
		code, body := get(t, base+"/metrics")
		return code == http.StatusOK &&
			strings.Contains(body, fault.MetricInjected) &&
			strings.Contains(body, `kind="node-crash"`) &&
			strings.Contains(body, `kind="profile-cell-loss"`)
	})

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit under faults: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("faulted daemon never finished its rounds")
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Metrics.Counters
	if got := c[telemetry.Label(fault.MetricInjected, "kind", "node-crash")]; got != 2 {
		t.Errorf("node-crash injections = %d, want 2", got)
	}
	if got := c[telemetry.Label(fault.MetricInjected, "kind", "profile-cell-loss")]; got != 1 {
		t.Errorf("cell-loss injections = %d, want 1", got)
	}
	if c[fault.MetricCellsLost] == 0 {
		t.Error("no cells recorded lost despite a 20% loss fault")
	}
	var fallbacks uint64
	for name, v := range c {
		if strings.HasPrefix(name, core.MetricModelFallback) {
			fallbacks += v
		}
	}
	if fallbacks == 0 {
		t.Error("model_fallback_total stayed zero under 20% cell loss")
	}
	if got := c["interfd_rounds_total"]; got != 2 {
		t.Errorf("rounds = %d, want 2", got)
	}
	if g := rep.Metrics.Gauges[fault.MetricDownHosts]; g != 2 {
		t.Errorf("fault_down_hosts gauge = %v, want 2", g)
	}
}

// degradeAllHostsPlan degrades every host by factor starting at round 1:
// profiling and round 0 see the clean cluster, so the models are accurate
// at first and then production drifts away from them — the seeded drift
// scenario of the acceptance criteria.
func degradeAllHostsPlan(hosts int, factor float64) fault.Plan {
	plan := fault.Plan{Seed: 1}
	for h := 0; h < hosts; h++ {
		plan.Faults = append(plan.Faults, fault.Fault{
			Kind: fault.NodeDegrade, Host: h, Factor: factor, Round: 1,
		})
	}
	return plan
}

// TestDaemonDriftUnderDegradedHosts is the drift acceptance test: with
// every host degraded from round 1, the live plane must show nonzero
// residual gauges and at least one drift event recommending specific
// cells, and the drained audit log must carry the full decision history.
func TestDaemonDriftUnderDegradedHosts(t *testing.T) {
	var auditPath string
	// The default 4-app mix fills all 16 slots, so co-location (and hence
	// nonzero pressure on the tracked cells) is guaranteed.
	base, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.faultsPath = writePlan(t, degradeAllHostsPlan(c.hosts, 1.6))
		c.driftMinObs = 2
		auditPath = c.driftAuditPath
	})
	defer cancel()

	// The tracker needs two rounds per app to warm up; wait for the first
	// drift event to reach the queryable plane.
	var snap drift.Snapshot
	waitFor(t, "a drift event on /api/drift", 60*time.Second, func() bool {
		code, body := get(t, base+"/api/drift")
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/api/drift is not a snapshot: %v", err)
		}
		return snap.EventsFired >= 1
	})
	if snap.MeanAbsResidual <= 0 {
		t.Errorf("mean abs residual = %v, want > 0 under degraded hosts", snap.MeanAbsResidual)
	}
	if len(snap.Apps) != 4 {
		t.Fatalf("drift snapshot tracks %d apps, want 4", len(snap.Apps))
	}
	for _, app := range snap.Apps {
		if app.ObservedCells == 0 {
			t.Errorf("app %s has no observed cells", app.App)
		}
		if len(app.WorstCells) == 0 || app.WorstCells[0].AbsResidual <= 0 {
			t.Errorf("app %s reports no per-cell residuals: %+v", app.App, app.WorstCells)
		}
	}

	// The decision audit is queryable live as JSON Lines.
	code, body := get(t, base+"/api/decisions")
	if code != http.StatusOK {
		t.Fatalf("/api/decisions = %d", code)
	}
	live, err := drift.LoadAuditJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/api/decisions is not parsable JSONL: %v", err)
	}
	if len(live) == 0 {
		t.Fatal("no decision records on the live plane")
	}

	// Drain and verify the flushed artifacts.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain")
	}
	f, err := os.Open(auditPath)
	if err != nil {
		t.Fatalf("flushed decision audit missing: %v", err)
	}
	defer f.Close()
	recs, err := drift.LoadAuditJSONL(f)
	if err != nil {
		t.Fatalf("flushed audit is not parsable: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("flushed audit is empty")
	}
	eventRecorded := false
	for _, rec := range recs {
		if len(rec.Assignment) != 4 || len(rec.Predicted) != 4 {
			t.Errorf("round %d record incomplete: %+v", rec.Round, rec)
		}
		if rec.Observed == nil {
			t.Errorf("round %d has no observed slowdowns", rec.Round)
		}
		for _, ev := range rec.DriftEvents {
			if len(ev.Cells) > 0 {
				eventRecorded = true
				for _, c := range ev.Cells {
					if c.Pressure < 1 || c.Interfering < 1 {
						t.Errorf("event recommends an out-of-matrix cell: %+v", c)
					}
				}
			}
		}
	}
	if !eventRecorded {
		t.Error("no audited drift event recommends specific cells")
	}

	// The final report carries the drift section and nonzero drift series.
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Drift == nil {
		t.Error("final report has no drift section")
	}
	if rep.Metrics.Counters[drift.MetricEvents] == 0 {
		t.Error("drift_events_total stayed zero in the final report")
	}
	if rep.Metrics.Gauges[drift.MetricMeanAbsResidual] <= 0 {
		t.Error("drift_mean_abs_residual gauge is zero in the final report")
	}
	appGauge := telemetry.Label(drift.MetricAppResidual, "app", "M.lmps")
	if rep.Metrics.Gauges[appGauge] <= 0 {
		t.Errorf("per-app residual gauge %s is zero", appGauge)
	}
}

// TestDaemonDriftAuditDeterministic runs the same seeded drift scenario
// twice and demands byte-identical decision audit logs — the replayability
// acceptance criterion.
func TestDaemonDriftAuditDeterministic(t *testing.T) {
	run := func() []byte {
		var auditPath string
		_, cancel, errCh, _ := startTestDaemon(t, func(c *daemonConfig) {
			c.faultsPath = writePlan(t, degradeAllHostsPlan(c.hosts, 1.6))
			c.driftMinObs = 2
			c.rounds = 3
			c.workers = 1
			auditPath = c.driftAuditPath
		})
		defer cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(120 * time.Second):
			t.Fatal("bounded daemon never finished")
		}
		raw, err := os.ReadFile(auditPath)
		if err != nil {
			t.Fatalf("audit missing: %v", err)
		}
		return raw
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Errorf("decision audit is not deterministic for a fixed seed:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	recs, err := drift.LoadAuditJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("audited rounds = %d, want 3", len(recs))
	}
}

// TestDaemonDrainsWhenProfilingNeverSucceeds forces every model build to
// fail (rate 1 transient profiling failures, no retries budget to spare)
// and checks the daemon drops all workloads, drains, and exits zero.
func TestDaemonDrainsWhenProfilingNeverSucceeds(t *testing.T) {
	plan := fault.Plan{
		Seed:   1,
		Faults: []fault.Fault{{Kind: fault.ProfilingFailure, Rate: 1}},
	}
	_, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.faultsPath = writePlan(t, plan)
		c.rounds = 2
		c.profileRetries = 1
		c.profileBackoff = time.Millisecond
	})
	defer cancel()

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon should drain, not fail: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("draining daemon never exited")
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Metrics.Counters
	if got := c["interfd_workloads_dropped_total"]; got != 4 {
		t.Errorf("dropped workloads = %d, want 4", got)
	}
	// Every workload retried once before dropping.
	if got := c["interfd_profile_retries_total"]; got != 4 {
		t.Errorf("profile retries = %d, want 4", got)
	}
	if c["interfd_rounds_total"] != 0 {
		t.Error("rounds ran despite an empty mix")
	}
}
