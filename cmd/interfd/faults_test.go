package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// writePlan marshals a fault plan into a temp file for the -faults flag.
func writePlan(t *testing.T, plan fault.Plan) string {
	t.Helper()
	raw, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonSurvivesFaultPlan is the fault-injection acceptance test: with
// two node crashes and 20% profile-cell loss at seed 1, the daemon must
// complete its rounds and exit zero, /metrics must export a positive
// model_fallback_total and per-kind fault_injected_total, and every
// surviving workload keeps a working predictor.
func TestDaemonSurvivesFaultPlan(t *testing.T) {
	plan := fault.Plan{
		Seed: 1,
		Faults: []fault.Fault{
			{Kind: fault.NodeCrash, Host: 2},
			{Kind: fault.NodeCrash, Host: 5},
			{Kind: fault.ProfileCellLoss, Fraction: 0.2},
		},
	}
	// Pause between rounds so the metrics surface stays scrapeable while
	// the faulted daemon is still alive (the rounds themselves are fast).
	base, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.faultsPath = writePlan(t, plan)
		c.rounds = 2
		c.roundPause = 150 * time.Millisecond
	})
	defer cancel()

	waitFor(t, "fault metrics on /metrics", 30*time.Second, func() bool {
		code, body := get(t, base+"/metrics")
		return code == http.StatusOK &&
			strings.Contains(body, fault.MetricInjected) &&
			strings.Contains(body, `kind="node-crash"`) &&
			strings.Contains(body, `kind="profile-cell-loss"`)
	})

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit under faults: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("faulted daemon never finished its rounds")
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Metrics.Counters
	if got := c[telemetry.Label(fault.MetricInjected, "kind", "node-crash")]; got != 2 {
		t.Errorf("node-crash injections = %d, want 2", got)
	}
	if got := c[telemetry.Label(fault.MetricInjected, "kind", "profile-cell-loss")]; got != 1 {
		t.Errorf("cell-loss injections = %d, want 1", got)
	}
	if c[fault.MetricCellsLost] == 0 {
		t.Error("no cells recorded lost despite a 20% loss fault")
	}
	var fallbacks uint64
	for name, v := range c {
		if strings.HasPrefix(name, core.MetricModelFallback) {
			fallbacks += v
		}
	}
	if fallbacks == 0 {
		t.Error("model_fallback_total stayed zero under 20% cell loss")
	}
	if got := c["interfd_rounds_total"]; got != 2 {
		t.Errorf("rounds = %d, want 2", got)
	}
	if g := rep.Metrics.Gauges[fault.MetricDownHosts]; g != 2 {
		t.Errorf("fault_down_hosts gauge = %v, want 2", g)
	}
}

// TestDaemonDrainsWhenProfilingNeverSucceeds forces every model build to
// fail (rate 1 transient profiling failures, no retries budget to spare)
// and checks the daemon drops all workloads, drains, and exits zero.
func TestDaemonDrainsWhenProfilingNeverSucceeds(t *testing.T) {
	plan := fault.Plan{
		Seed:   1,
		Faults: []fault.Fault{{Kind: fault.ProfilingFailure, Rate: 1}},
	}
	_, cancel, errCh, reportPath := startTestDaemon(t, func(c *daemonConfig) {
		c.faultsPath = writePlan(t, plan)
		c.rounds = 2
		c.profileRetries = 1
		c.profileBackoff = time.Millisecond
	})
	defer cancel()

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon should drain, not fail: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("draining daemon never exited")
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var rep telemetry.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	c := rep.Metrics.Counters
	if got := c["interfd_workloads_dropped_total"]; got != 4 {
		t.Errorf("dropped workloads = %d, want 4", got)
	}
	// Every workload retried once before dropping.
	if got := c["interfd_profile_retries_total"]; got != 4 {
		t.Errorf("profile retries = %d, want 4", got)
	}
	if c["interfd_rounds_total"] != 0 {
		t.Error("rounds ran despite an empty mix")
	}
}
