package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// serveOnlyDaemon starts a serve-only daemon with a two-workload mix (fast
// profiling) and waits for readiness.
func serveOnlyDaemon(t *testing.T, mutate func(*daemonConfig)) (string, context.CancelFunc, chan error) {
	t.Helper()
	base, cancel, errCh, _ := startTestDaemon(t, func(c *daemonConfig) {
		c.serveOnly = true
		c.mix = []string{"M.lmps", "C.libq"}
		c.samples = 4
		c.searchIters = 120
		if mutate != nil {
			mutate(c)
		}
	})
	waitFor(t, "/readyz to flip to 200", 60*time.Second, func() bool {
		code, _ := get(t, base+"/readyz")
		return code == http.StatusOK
	})
	return base, cancel, errCh
}

func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestDaemonPlacementAPI is the serving-plane acceptance test: the same
// request body twice returns byte-identical placements, what-if reproduces
// the search's numbers, /api/slo answers, the span tree carries the
// request ID, and /metrics exposes the serve_* family plus process health.
func TestDaemonPlacementAPI(t *testing.T) {
	base, cancel, errCh := serveOnlyDaemon(t, nil)
	defer cancel()

	req := serve.PlaceRequest{
		ID:   "accept-1",
		Apps: []serve.AppDemand{{App: "M.lmps", Units: 4}, {App: "C.libq", Units: 4}},
	}
	code, first := post(t, base+"/api/place", req)
	if code != http.StatusOK {
		t.Fatalf("/api/place = %d: %s", code, first)
	}
	code2, second := post(t, base+"/api/place", req)
	if code2 != http.StatusOK {
		t.Fatalf("second /api/place = %d", code2)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("identical requests returned different bytes:\n%s\nvs\n%s", first, second)
	}
	var placed serve.Response
	if err := json.Unmarshal(first, &placed); err != nil {
		t.Fatal(err)
	}
	if placed.Objective <= 0 || placed.Evaluations <= 0 {
		t.Errorf("response = %+v", placed)
	}

	// What-if on the searched placement reproduces its numbers.
	wiCode, wiBody := post(t, base+"/api/whatif", serve.WhatIfRequest{Placement: placed.Placement})
	if wiCode != http.StatusOK {
		t.Fatalf("/api/whatif = %d: %s", wiCode, wiBody)
	}
	var wi serve.Response
	if err := json.Unmarshal(wiBody, &wi); err != nil {
		t.Fatal(err)
	}
	if wi.Objective != placed.Objective {
		t.Errorf("whatif objective %v, place %v", wi.Objective, placed.Objective)
	}

	// /api/slo accounts the traffic.
	sloCode, sloBody := get(t, base+"/api/slo")
	if sloCode != http.StatusOK {
		t.Fatalf("/api/slo = %d", sloCode)
	}
	var slo obs.SLOSnapshot
	if err := json.Unmarshal([]byte(sloBody), &slo); err != nil {
		t.Fatal(err)
	}
	if slo.Requests < 3 {
		t.Errorf("SLO requests = %d, want >= 3", slo.Requests)
	}

	// Span tree: a serve.place root tagged with the request ID, with its
	// stages as children.
	_, spansBody := get(t, base+"/api/spans")
	var tr telemetry.TraceReport
	if err := json.Unmarshal([]byte(spansBody), &tr); err != nil {
		t.Fatal(err)
	}
	var root telemetry.SpanRecord
	stages := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Name == "serve.place" && sp.Request == "accept-1" {
			root = sp
		}
	}
	for _, sp := range tr.Spans {
		if sp.ParentID == root.ID && sp.Request == "accept-1" {
			stages[sp.Name] = true
		}
	}
	if root.ID == 0 {
		t.Fatal("no serve.place span tagged accept-1")
	}
	for _, want := range []string{"admit", "wait", "search", "respond"} {
		if !stages[want] {
			t.Errorf("missing %s child span under serve.place", want)
		}
	}

	// Metrics: serve_* family and process health in the exposition.
	_, metrics := get(t, base+"/metrics")
	for _, want := range []string{
		serve.MetricBatches, serve.HistE2E + "_bucket",
		serve.HistE2E + "_p50", obs.RuntimeMetricGoroutines,
		obs.SLOMetricRequests,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve-only daemon did not exit")
	}
}

// TestDaemonSLOBreach forces every request to violate the SLO (target
// 1ns) and checks the acceptance criteria: a nonzero burn-rate gauge on
// /metrics and an slo_breach frame on /api/events.
func TestDaemonSLOBreach(t *testing.T) {
	base, cancel, _ := serveOnlyDaemon(t, func(c *daemonConfig) {
		c.sloTarget = 1e-9
		c.sloMinRequests = 1
		c.sloCooldown = 0
	})
	defer cancel()

	sseCtx, sseCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sseCancel()
	sseReq, err := http.NewRequestWithContext(sseCtx, "GET", base+"/api/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	code, body := post(t, base+"/api/place", serve.PlaceRequest{
		Apps: []serve.AppDemand{{App: "M.lmps", Units: 2}},
	})
	if code != http.StatusOK {
		t.Fatalf("/api/place = %d: %s", code, body)
	}

	reader := bufio.NewReader(resp.Body)
	for {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE ended before slo_breach arrived: %v", err)
		}
		if strings.TrimSpace(line) == "event: "+obs.EventSLOBreach {
			break
		}
	}
	sseCancel()

	_, metrics := get(t, base+"/metrics")
	burn := 0.0
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, obs.SLOMetricBurnRate+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(obs.SLOMetricBurnRate)+1:]), 64)
			if err != nil {
				t.Fatalf("parse burn rate line %q: %v", line, err)
			}
			burn = v
		}
	}
	if burn <= 0 {
		t.Errorf("%s = %v, want > 0", obs.SLOMetricBurnRate, burn)
	}
}

// TestDaemonAddrFile: -addr-file publishes the bound address.
func TestDaemonAddrFile(t *testing.T) {
	dir := t.TempDir()
	addrPath := filepath.Join(dir, "addr")
	base, cancel, _ := serveOnlyDaemon(t, func(c *daemonConfig) {
		c.addrFile = addrPath
	})
	defer cancel()
	raw, err := os.ReadFile(addrPath)
	if err != nil {
		t.Fatalf("addr file missing: %v", err)
	}
	if got := "http://" + strings.TrimSpace(string(raw)); got != base {
		t.Errorf("addr file = %q, daemon at %q", got, base)
	}
}
