package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// linPred is a pure linear interference model: 1 + w * sum(pressures).
type linPred struct{ w float64 }

func (f linPred) PredictPressures(ps []float64) (float64, error) {
	var sum float64
	for _, p := range ps {
		sum += p
	}
	return 1 + f.w*sum, nil
}

// testTarget stands up an in-process placement service behind a real obs
// mux — the same wiring interfd uses — and returns its base URL.
func testTarget(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{
		NumHosts: 8, SlotsPerHost: 2, Seed: 42,
		Iterations: 60, QueueDepth: 64, MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.SetBackend(serve.Backend{
		Predictors: map[string]core.Predictor{
			"alpha": linPred{0.30}, "beta": linPred{0.05}, "gamma": linPred{0.10},
		},
		Scores: map[string]float64{"alpha": 2, "beta": 5, "gamma": 3},
	})
	srv := obs.New(obs.Options{Routes: s.Routes()})
	srv.SetReady(true)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func testConfig(seed int64) genConfig {
	return genConfig{
		N: 24, Rate: 500, Seed: seed,
		Pool:    []string{"alpha", "beta", "gamma"},
		Servers: 2, Iters: 40,
	}
}

// TestTraceDeterministic: the trace is a pure function of the seed, with
// strictly increasing arrivals and well-formed requests.
func TestTraceDeterministic(t *testing.T) {
	cfg := testConfig(7)
	a, b := buildTrace(cfg), buildTrace(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	prev := 0.0
	for i, tr := range a {
		if tr.Arrival <= prev {
			t.Errorf("arrival %d = %v, not after %v", i, tr.Arrival, prev)
		}
		prev = tr.Arrival
		if tr.Req.Seed == 0 || len(tr.Req.Apps) == 0 {
			t.Errorf("trace entry %d malformed: %+v", i, tr.Req)
		}
	}
	if c := buildTrace(testConfig(8)); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical traces")
	}
}

// TestReportByteIdentical is the determinism acceptance test: two full
// replays with the same seed against the same live service produce
// byte-identical reports with nonzero sustained throughput.
func TestReportByteIdentical(t *testing.T) {
	base := testTarget(t)
	cfg := testConfig(11)
	client := &http.Client{Timeout: 30 * time.Second}

	doc1, raw1, err := runTrace(cfg, client, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, raw2, err := runTrace(cfg, client, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("same-seed reports differ:\n%s\nvs\n%s", raw1, raw2)
	}
	if doc1.Errors != 0 {
		t.Errorf("errors = %d, want 0", doc1.Errors)
	}
	if doc1.Requests != cfg.N {
		t.Errorf("requests = %d, want %d", doc1.Requests, cfg.N)
	}
	if doc1.SustainedRPS <= 0 {
		t.Errorf("sustained_rps = %v, want > 0", doc1.SustainedRPS)
	}
	if doc1.Latency.P50 <= 0 || doc1.Latency.P99 < doc1.Latency.P50 {
		t.Errorf("latency stats inconsistent: %+v", doc1.Latency)
	}
	if doc1.MeanObjective <= 0 || doc1.Evaluations <= 0 {
		t.Errorf("aggregates missing: %+v", doc1)
	}

	// The report round-trips as JSON.
	var back reportDoc
	if err := json.Unmarshal(raw1, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Digest != doc1.Digest || back.Digest == "" {
		t.Errorf("digest = %q vs %q", back.Digest, doc1.Digest)
	}

	// A different seed changes the digest.
	doc3, _, err := runTrace(testConfig(12), client, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc3.Digest == doc1.Digest {
		t.Error("different seeds produced the same digest")
	}
}

// TestErrorsCounted: an unknown app in the pool turns into counted
// errors, not a crash, and errored requests stay out of the latency path.
func TestErrorsCounted(t *testing.T) {
	base := testTarget(t)
	cfg := testConfig(3)
	cfg.Pool = []string{"ghost"}
	client := &http.Client{Timeout: 30 * time.Second}
	doc, _, err := runTrace(cfg, client, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Errors != cfg.N {
		t.Errorf("errors = %d, want %d", doc.Errors, cfg.N)
	}
	if doc.SustainedRPS != 0 || doc.Latency.Max != 0 {
		t.Errorf("latency computed from errored requests: %+v", doc)
	}
}

// TestQuantileNearestRank pins the nearest-rank rule.
func TestQuantileNearestRank(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{nil, 0.5, 0},
		{[]float64{4}, 0.5, 4},
		{[]float64{4}, 0.99, 4},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.75, 3},
		{[]float64{1, 2, 3, 4}, 0.99, 4},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.5, 5},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9},
	}
	for _, c := range cases {
		if got := quantile(c.sorted, c.q); got != c.want {
			t.Errorf("quantile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}

// TestResolveAddr covers the flag plumbing: bare host:port gains a
// scheme, addr files are polled into existence, and missing flags fail.
func TestResolveAddr(t *testing.T) {
	if _, err := resolveAddr("", "", time.Now().Add(time.Second)); err == nil {
		t.Error("no addr accepted")
	}
	got, err := resolveAddr("127.0.0.1:9090", "", time.Now())
	if err != nil || got != "http://127.0.0.1:9090" {
		t.Errorf("resolveAddr = %q, %v", got, err)
	}
	f := t.TempDir() + "/addr"
	go func() {
		time.Sleep(50 * time.Millisecond)
		writeFile(t, f, "127.0.0.1:7777\n")
	}()
	got, err = resolveAddr("", f, time.Now().Add(5*time.Second))
	if err != nil || got != "http://127.0.0.1:7777" {
		t.Errorf("resolveAddr from file = %q, %v", got, err)
	}
	if _, err := resolveAddr("", t.TempDir()+"/never", time.Now().Add(-time.Second)); err == nil {
		t.Error("expired deadline on a missing addr file did not fail")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Error(err)
	}
}
