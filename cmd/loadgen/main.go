// Command loadgen replays a seeded open-loop arrival trace against a
// running interfd placement service and writes a deterministic load
// report: p50/p95/p99 latency and sustained requests/sec.
//
// Determinism contract: the report is a pure function of the flags. The
// trace (arrival offsets, app mixes, per-request seeds) comes from one
// seeded generator, every request carries an explicit search seed so the
// server's response is a pure function of the request body, and latency
// is computed on a virtual clock — the modeled SimServiceSeconds of each
// response pushed through a deterministic multi-server queue recurrence
// over the scheduled arrival times. Wall-clock timings go to the log and
// the RunReport only, never into the report file, so two runs with the
// same seed against the same server produce byte-identical reports.
//
// Examples:
//
//	loadgen -addr http://127.0.0.1:9090 -n 80 -rate 50 -seed 7
//	loadgen -addr-file /tmp/interfd.addr -n 40 -rate 200 -report lg.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// Metric names loadgen appends to its own registry (RunReport wiring).
const (
	MetricRequests  = "loadgen_requests_total"
	MetricErrors    = "loadgen_errors_total"
	HistVirtualLat  = "loadgen_virtual_latency_seconds"
	GaugeSustained  = "loadgen_sustained_rps"
	GaugeOfferedRPS = "loadgen_offered_rps"
)

var logger = obs.Nop()

// genConfig is everything the deterministic pipeline depends on.
type genConfig struct {
	N        int      // requests in the trace
	Rate     float64  // offered arrival rate, requests/sec
	Seed     int64    // trace + per-request search seeds
	Pool     []string // application names to draw mixes from
	Servers  int      // virtual servers in the latency recurrence
	Iters    int      // per-request iteration override (0 = server default)
	Restarts int      // per-request restart override (0 = server default)
}

// timedRequest is one trace entry: the body plus its arrival offset on
// the virtual (and open-loop wall) clock.
type timedRequest struct {
	Arrival float64 // seconds since trace start
	Req     serve.PlaceRequest
}

// outcome records one response in arrival order.
type outcome struct {
	Status int
	Body   []byte
	Resp   serve.Response
	OK     bool
}

// latencyStats summarizes the virtual latency distribution in
// milliseconds.
type latencyStats struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// reportDoc is the deterministic artifact written to -report.
type reportDoc struct {
	Tool            string       `json:"tool"`
	Seed            int64        `json:"seed"`
	Requests        int          `json:"requests"`
	Errors          int          `json:"errors"`
	OfferedRPS      float64      `json:"offered_rps"`
	SustainedRPS    float64      `json:"sustained_rps"`
	VirtualServers  int          `json:"virtual_servers"`
	Latency         latencyStats `json:"latency"`
	MeanObjective   float64      `json:"mean_objective"`
	QoSRequested    int          `json:"qos_requested"`
	QoSSatisfied    int          `json:"qos_satisfied"`
	Evaluations     int          `json:"evaluations"`
	SimServiceTotal float64      `json:"sim_service_seconds_total"`
	Digest          string       `json:"digest"`
}

// buildTrace derives the whole arrival trace from the seed: exponential
// inter-arrival gaps at the offered rate, a 1-2 app mix per request drawn
// from the pool, units of 2 or 4, an occasional QoS constraint, and an
// explicit nonzero search seed so the server answers deterministically.
func buildTrace(cfg genConfig) []timedRequest {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trace := make([]timedRequest, cfg.N)
	clock := 0.0
	maxK := 2
	if len(cfg.Pool) < maxK {
		maxK = len(cfg.Pool)
	}
	for i := range trace {
		clock += rng.ExpFloat64() / cfg.Rate
		k := 1 + rng.Intn(maxK)
		perm := rng.Perm(len(cfg.Pool))
		apps := make([]serve.AppDemand, k)
		for j := 0; j < k; j++ {
			apps[j] = serve.AppDemand{App: cfg.Pool[perm[j]], Units: 2 + 2*rng.Intn(2)}
		}
		req := serve.PlaceRequest{
			ID:         fmt.Sprintf("lg-%05d", i),
			Apps:       apps,
			Seed:       cfg.Seed*1_000_003 + int64(i) + 1,
			Iterations: cfg.Iters,
			Restarts:   cfg.Restarts,
		}
		if rng.Float64() < 0.25 {
			req.QoSApp, req.QoSMax = apps[0].App, 1.5
		}
		trace[i] = timedRequest{Arrival: clock, Req: req}
	}
	return trace
}

// fire replays the trace open-loop: every request is posted at its
// scheduled offset from start, regardless of how earlier requests are
// doing. Outcomes come back indexed by trace position.
func fire(client *http.Client, base string, trace []timedRequest) []outcome {
	outs := make([]outcome, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	for i, tr := range trace {
		wg.Add(1)
		go func(i int, tr timedRequest) {
			defer wg.Done()
			if d := time.Duration(tr.Arrival*float64(time.Second)) - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			body, err := json.Marshal(tr.Req)
			if err != nil {
				outs[i] = outcome{Status: 0, Body: []byte(err.Error())}
				return
			}
			resp, err := client.Post(base+"/api/place", "application/json", bytes.NewReader(body))
			if err != nil {
				outs[i] = outcome{Status: 0, Body: []byte(err.Error())}
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				outs[i] = outcome{Status: 0, Body: []byte(err.Error())}
				return
			}
			o := outcome{Status: resp.StatusCode, Body: raw}
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(raw, &o.Resp); err == nil {
					o.OK = true
				}
			}
			outs[i] = o
		}(i, tr)
	}
	wg.Wait()
	return outs
}

// quantile returns the nearest-rank q-quantile of sorted (ascending).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// analyze folds trace and outcomes into the deterministic report: virtual
// latency from a c-server queue recurrence over the modeled service
// times, sustained throughput from the virtual makespan, and an FNV-64a
// digest over every response body in arrival order.
func analyze(cfg genConfig, trace []timedRequest, outs []outcome, reg *telemetry.Registry) reportDoc {
	doc := reportDoc{
		Tool:           "loadgen",
		Seed:           cfg.Seed,
		Requests:       len(trace),
		OfferedRPS:     cfg.Rate,
		VirtualServers: cfg.Servers,
	}
	digest := fnv.New64a()
	free := make([]float64, cfg.Servers)
	var lats []float64
	makespan := 0.0
	for i, o := range outs {
		fmt.Fprintf(digest, "%05d:%d:", i, o.Status)
		digest.Write(o.Body)
		if !o.OK {
			doc.Errors++
			if reg != nil {
				reg.Counter(MetricErrors).Inc()
			}
			continue
		}
		if reg != nil {
			reg.Counter(MetricRequests).Inc()
		}
		// Virtual completion: the earliest-free server picks the
		// request up no sooner than its arrival.
		j := 0
		for k := 1; k < len(free); k++ {
			if free[k] < free[j] {
				j = k
			}
		}
		startAt := trace[i].Arrival
		if free[j] > startAt {
			startAt = free[j]
		}
		done := startAt + o.Resp.SimServiceSeconds
		free[j] = done
		lat := done - trace[i].Arrival
		lats = append(lats, lat)
		if done > makespan {
			makespan = done
		}
		if reg != nil {
			reg.Histogram(HistVirtualLat, telemetry.ExpBuckets(0.0005, 2, 14)).Observe(lat)
		}
		doc.MeanObjective += o.Resp.Objective
		doc.Evaluations += o.Resp.Evaluations
		doc.SimServiceTotal += o.Resp.SimServiceSeconds
		if trace[i].Req.QoSApp != "" {
			doc.QoSRequested++
			if o.Resp.QoSSatisfied {
				doc.QoSSatisfied++
			}
		}
	}
	if n := len(lats); n > 0 {
		doc.MeanObjective /= float64(n)
		sort.Float64s(lats)
		doc.Latency = latencyStats{
			P50: 1000 * quantile(lats, 0.50),
			P95: 1000 * quantile(lats, 0.95),
			P99: 1000 * quantile(lats, 0.99),
			Max: 1000 * lats[n-1],
		}
		if makespan > 0 {
			doc.SustainedRPS = float64(n) / makespan
		}
	}
	doc.Digest = fmt.Sprintf("fnv64:%016x", digest.Sum64())
	if reg != nil {
		reg.Gauge(GaugeOfferedRPS).Set(doc.OfferedRPS)
		reg.Gauge(GaugeSustained).Set(doc.SustainedRPS)
	}
	return doc
}

// runTrace is the whole deterministic pipeline: build, fire, analyze,
// marshal. The returned bytes are the report file content.
func runTrace(cfg genConfig, client *http.Client, base string, reg *telemetry.Registry) (reportDoc, []byte, error) {
	trace := buildTrace(cfg)
	wall := time.Now()
	outs := fire(client, base, trace)
	elapsed := time.Since(wall)
	doc := analyze(cfg, trace, outs, reg)
	logger.Info("trace replayed",
		"requests", doc.Requests, "errors", doc.Errors,
		"wall", elapsed, "wall_rps", float64(doc.Requests)/elapsed.Seconds(),
		"virtual_p99_ms", doc.Latency.P99, "sustained_rps", doc.SustainedRPS)
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return doc, nil, err
	}
	return doc, append(raw, '\n'), nil
}

// resolveAddr turns -addr / -addr-file into a base URL, polling the addr
// file into existence when interfd is still starting.
func resolveAddr(addr, addrFile string, deadline time.Time) (string, error) {
	if addr == "" && addrFile == "" {
		return "", fmt.Errorf("one of -addr or -addr-file is required")
	}
	if addrFile != "" {
		for {
			raw, err := os.ReadFile(addrFile)
			if err == nil && len(bytes.TrimSpace(raw)) > 0 {
				addr = strings.TrimSpace(string(raw))
				break
			}
			if time.Now().After(deadline) {
				return "", fmt.Errorf("addr file %s not readable: %v", addrFile, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/"), nil
}

// waitReady polls /readyz until the server accepts work.
func waitReady(client *http.Client, base string, deadline time.Time) error {
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s/readyz not ready before deadline", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running interfd, e.g. http://127.0.0.1:9090")
		addrFile    = flag.String("addr-file", "", "read the target address from this file (interfd -addr-file)")
		n           = flag.Int("n", 50, "requests in the trace")
		rate        = flag.Float64("rate", 25, "offered arrival rate, requests/sec")
		seed        = flag.Int64("seed", 1, "trace seed; also drives per-request search seeds")
		appsCSV     = flag.String("apps", "M.lmps,C.libq,H.KM,N.cg", "comma-separated app pool to draw request mixes from")
		servers     = flag.Int("servers", 2, "virtual servers in the latency recurrence")
		iters       = flag.Int("iters", 0, "per-request search iteration override (0 = server default)")
		restarts    = flag.Int("restarts", 0, "per-request search restart override (0 = server default)")
		reportPath  = flag.String("report", "-", "write the deterministic load report here ('-' for stdout)")
		wait        = flag.Duration("wait", 30*time.Second, "how long to wait for the target to become ready")
		metricsPath = flag.String("metrics", "", "write a JSON RunReport (metrics snapshot) to this file ('-' for stdout)")
		tracePath   = flag.String("trace", "", "write recorded spans as JSON to this file ('-' for stdout)")
		logFormat   = flag.String("log-format", obs.LogText, "log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	l, err := obs.FlagLogger(*logFormat, *logLevel, "loadgen")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	logger = l

	cfg := genConfig{
		N: *n, Rate: *rate, Seed: *seed,
		Pool:    strings.Split(*appsCSV, ","),
		Servers: *servers, Iters: *iters, Restarts: *restarts,
	}
	for i := range cfg.Pool {
		cfg.Pool[i] = strings.TrimSpace(cfg.Pool[i])
	}
	if cfg.N <= 0 || cfg.Rate <= 0 || cfg.Servers <= 0 || len(cfg.Pool) == 0 {
		fatal(fmt.Errorf("need positive -n, -rate, -servers and a non-empty -apps pool"))
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	telemetry.RegisterBuildInfo(reg)
	runReport := telemetry.NewRunReport("loadgen", *seed, os.Args[1:])

	deadline := time.Now().Add(*wait)
	client := &http.Client{Timeout: *wait}
	base, err := resolveAddr(*addr, *addrFile, deadline)
	if err != nil {
		fatal(err)
	}
	logger.Info("targeting placement service", "addr", base, "n", cfg.N, "rate", cfg.Rate, "seed", cfg.Seed)
	if err := waitReady(client, base, deadline); err != nil {
		fatal(err)
	}

	sp := tracer.StartSpan("loadgen.run")
	_, raw, err := runTrace(cfg, client, base, reg)
	sp.End()
	if err != nil {
		fatal(err)
	}
	if *reportPath == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*reportPath, raw, 0o644); err != nil {
		fatal(err)
	}
	if err := telemetry.Emit(runReport, reg, tracer, *metricsPath, *tracePath); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
