// Command placer runs the interference-aware placement search for a mix
// of four applications on the 8-host cluster, optionally with a QoS
// constraint, and verifies the chosen placement on the simulator.
//
// Examples:
//
//	placer -apps M.milc,C.libq,H.KM,M.lmps
//	placer -apps M.lmps,C.libq,H.KM,N.cg -qos M.lmps -bound 1.25
//	placer -apps M.milc,C.libq,H.KM,M.lmps -goal worst
//	placer -apps M.milc,C.libq,H.KM,M.lmps -metrics - -trace - -listen :9090
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/workloads"

	interference "repro"
)

// logger is installed by main before any fatal path can run.
var logger = obs.Nop()

func main() {
	var (
		appsCSV     = flag.String("apps", "M.milc,C.libq,H.KM,M.lmps", "comma-separated mix of 4 workloads")
		qosApp      = flag.String("qos", "", "application to protect with a QoS constraint")
		bound       = flag.Float64("bound", 1.25, "QoS bound on normalized execution time")
		goal        = flag.String("goal", "best", "search goal: best or worst")
		iters       = flag.Int("iters", 4000, "annealing iterations")
		restarts    = flag.Int("restarts", 0, "independent annealing restarts, run in parallel (0 = search default)")
		cells       = flag.Int("cells", 0, "shard hosts into this many cells for the hierarchical search (0 = size adaptively from the host count, 1 = flat)")
		exchange    = flag.Int("exchange", 0, "cross-cell exchange proposals after the cell phase (0 = iters; needs cells > 1)")
		exWorkers   = flag.Int("exchange-workers", 0, "speculative exchange evaluators (0/1 = serial; >1 needs cells > 1)")
		units       = flag.Int("units", 4, "units per application")
		naive       = flag.Bool("naive", false, "drive the search with the naive proportional model")
		seed        = flag.Int64("seed", 1, "experiment seed")
		metricsPath = flag.String("metrics", "", "write a JSON RunReport (metrics snapshot) to this file ('-' for stdout)")
		tracePath   = flag.String("trace", "", "write recorded spans as JSON to this file ('-' for stdout)")
		listen      = flag.String("listen", "", "serve the observability plane (/metrics, /healthz, /readyz, /api/*, /debug/pprof/) on this address for the duration of the run, e.g. :9090")
		logFormat   = flag.String("log-format", obs.LogText, "log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	l, err := obs.FlagLogger(*logFormat, *logLevel, "placer")
	if err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
	logger = l

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	telemetry.RegisterBuildInfo(reg)
	runReport := telemetry.NewRunReport("placer", *seed, os.Args[1:])
	out := report.NewReporter(os.Stdout)

	var srv *obs.Server
	var plane *obs.Running
	bus := obs.NewBus(obs.DefaultBusBuffer)
	if *listen != "" {
		srv = obs.New(obs.Options{Registry: reg, Tracer: tracer, Report: runReport, Bus: bus, Logger: logger})
		plane, err = srv.Start(*listen)
		if err != nil {
			fatal(err)
		}
		defer func() {
			srv.SetReady(false)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := plane.Shutdown(ctx); err != nil {
				logger.Warn("plane shutdown", "err", err)
			}
		}()
	}

	names := strings.Split(*appsCSV, ",")
	env, err := interference.NewPrivateClusterEnv(*seed)
	if err != nil {
		fatal(err)
	}
	env.Telemetry = reg
	env.Tracer = tracer

	preds := map[string]interference.Predictor{}
	scores := map[string]float64{}
	wreg := map[string]workloads.Workload{}
	var demands []interference.Demand
	counts := map[string]int{}
	cfg := interference.DefaultBuildConfig()
	cfg.Seed = *seed
	cfg.Telemetry = reg
	cfg.Tracer = tracer
	for _, raw := range names {
		base := strings.TrimSpace(raw)
		w, err := interference.WorkloadByName(base)
		if err != nil {
			fatal(err)
		}
		counts[base]++
		alias := base
		if counts[base] > 1 {
			alias = fmt.Sprintf("%s(%d)", base, counts[base])
			w.Name = alias
			w.App.Name = alias
		}
		logger.Info("profiling workload", "workload", base, "alias", alias, "naive", *naive)
		var pred interference.Predictor
		var score float64
		if *naive {
			nm, err := interference.BuildNaiveModel(env, w, *units)
			if err != nil {
				fatal(err)
			}
			pred, score = nm, nm.BubbleScore
		} else {
			m, err := interference.BuildModel(env, w, cfg)
			if err != nil {
				fatal(err)
			}
			pred, score = m, m.BubbleScore
		}
		preds[alias] = pred
		scores[alias] = score
		wreg[alias] = w
		demands = append(demands, interference.Demand{App: alias, Units: *units})
	}
	if srv != nil {
		srv.SetReady(true)
	}

	req := interference.PlacementRequest{
		NumHosts: 8, SlotsPerHost: 2,
		Demands: demands, Predictors: preds, Scores: scores,
	}
	pcfg := interference.DefaultPlacementConfig(*seed)
	pcfg.Iterations = *iters
	if *restarts > 0 {
		pcfg.Restarts = *restarts
	}
	pcfg.Cells = *cells
	if *cells == 0 {
		pcfg.Cells = placement.AdaptiveCells(req.NumHosts, runtime.GOMAXPROCS(0))
	}
	pcfg.ExchangeIters = *exchange
	pcfg.ExchangeWorkers = *exWorkers
	pcfg.Telemetry = reg
	pcfg.Tracer = tracer
	pcfg.OnProgress = func(s placement.ProgressSample) {
		if s.Step%25 != 0 {
			return
		}
		if data, err := json.Marshal(s); err == nil {
			bus.Publish("placement_sample", data)
		}
	}
	switch *goal {
	case "best":
		pcfg.Goal = placement.Best
	case "worst":
		pcfg.Goal = placement.Worst
	default:
		fatal(fmt.Errorf("unknown goal %q", *goal))
	}
	if *qosApp != "" {
		pcfg.QoS = &interference.QoS{App: *qosApp, MaxNormalized: *bound}
	}
	res, err := interference.SearchPlacement(req, pcfg)
	if err != nil {
		fatal(err)
	}
	cluster.RecordOccupancy(reg, res.Placement)
	logger.Info("placement chosen", "objective", res.Objective, "evaluations", res.Evaluations)

	out.KV("placement", "%s", res.Placement)
	out.KV("objective", "%.4f (weighted normalized runtime, model)", res.Objective)
	if pcfg.QoS != nil {
		out.KV("QoS (model)", "%s <= %.2f: %v", *qosApp, *bound, res.QoSSatisfied)
	}
	out.KV("evaluations", "%d", res.Evaluations)
	out.Blank()

	outs, err := env.RunPlacement(res.Placement, wreg)
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable("Simulated outcome of the chosen placement",
		"app", "predicted", "simulated", "units")
	var appNames []string
	for a := range outs {
		appNames = append(appNames, a)
	}
	sort.Strings(appNames)
	for _, a := range appNames {
		reg.Gauge(telemetry.Label("app_predicted_normalized", "app", a)).Set(res.Predicted[a])
		tb.MustAddRow(a, report.Norm(res.Predicted[a]), report.Norm(outs[a].Normalized),
			fmt.Sprint(res.Placement.UnitsOf(a)))
	}
	out.Table(tb)

	if err := telemetry.Emit(runReport, reg, tracer, *metricsPath, *tracePath); err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
