// Command placer runs the interference-aware placement search for a mix
// of four applications on the 8-host cluster, optionally with a QoS
// constraint, and verifies the chosen placement on the simulator.
//
// Examples:
//
//	placer -apps M.milc,C.libq,H.KM,M.lmps
//	placer -apps M.lmps,C.libq,H.KM,N.cg -qos M.lmps -bound 1.25
//	placer -apps M.milc,C.libq,H.KM,M.lmps -goal worst
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/workloads"

	interference "repro"
)

func main() {
	var (
		appsCSV = flag.String("apps", "M.milc,C.libq,H.KM,M.lmps", "comma-separated mix of 4 workloads")
		qosApp  = flag.String("qos", "", "application to protect with a QoS constraint")
		bound   = flag.Float64("bound", 1.25, "QoS bound on normalized execution time")
		goal    = flag.String("goal", "best", "search goal: best or worst")
		iters   = flag.Int("iters", 4000, "annealing iterations")
		units   = flag.Int("units", 4, "units per application")
		naive   = flag.Bool("naive", false, "drive the search with the naive proportional model")
		seed    = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	names := strings.Split(*appsCSV, ",")
	env, err := interference.NewPrivateClusterEnv(*seed)
	if err != nil {
		fatal(err)
	}

	preds := map[string]interference.Predictor{}
	scores := map[string]float64{}
	reg := map[string]workloads.Workload{}
	var demands []interference.Demand
	counts := map[string]int{}
	cfg := interference.DefaultBuildConfig()
	cfg.Seed = *seed
	for _, raw := range names {
		base := strings.TrimSpace(raw)
		w, err := interference.WorkloadByName(base)
		if err != nil {
			fatal(err)
		}
		counts[base]++
		alias := base
		if counts[base] > 1 {
			alias = fmt.Sprintf("%s(%d)", base, counts[base])
			w.Name = alias
			w.App.Name = alias
		}
		fmt.Fprintf(os.Stderr, "profiling %s...\n", base)
		var pred interference.Predictor
		var score float64
		if *naive {
			nm, err := interference.BuildNaiveModel(env, w, *units)
			if err != nil {
				fatal(err)
			}
			pred, score = nm, nm.BubbleScore
		} else {
			m, err := interference.BuildModel(env, w, cfg)
			if err != nil {
				fatal(err)
			}
			pred, score = m, m.BubbleScore
		}
		preds[alias] = pred
		scores[alias] = score
		reg[alias] = w
		demands = append(demands, interference.Demand{App: alias, Units: *units})
	}

	req := interference.PlacementRequest{
		NumHosts: 8, SlotsPerHost: 2,
		Demands: demands, Predictors: preds, Scores: scores,
	}
	pcfg := interference.DefaultPlacementConfig(*seed)
	pcfg.Iterations = *iters
	switch *goal {
	case "best":
		pcfg.Goal = placement.Best
	case "worst":
		pcfg.Goal = placement.Worst
	default:
		fatal(fmt.Errorf("unknown goal %q", *goal))
	}
	if *qosApp != "" {
		pcfg.QoS = &interference.QoS{App: *qosApp, MaxNormalized: *bound}
	}
	res, err := interference.SearchPlacement(req, pcfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("placement    %s\n", res.Placement)
	fmt.Printf("objective    %.4f (weighted normalized runtime, model)\n", res.Objective)
	if pcfg.QoS != nil {
		fmt.Printf("QoS (model)  %s <= %.2f: %v\n", *qosApp, *bound, res.QoSSatisfied)
	}
	fmt.Printf("evaluations  %d\n\n", res.Evaluations)

	outs, err := env.RunPlacement(res.Placement, reg)
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable("Simulated outcome of the chosen placement",
		"app", "predicted", "simulated", "units")
	var appNames []string
	for a := range outs {
		appNames = append(appNames, a)
	}
	sort.Strings(appNames)
	for _, a := range appNames {
		tb.MustAddRow(a, report.Norm(res.Predicted[a]), report.Norm(outs[a].Normalized),
			fmt.Sprint(res.Placement.UnitsOf(a)))
	}
	fmt.Println(tb)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "placer:", err)
	os.Exit(1)
}
