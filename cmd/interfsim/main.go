// Command interfsim runs one distributed workload on the simulated
// consolidated cluster under a chosen interference configuration and
// prints its raw and normalized execution times.
//
// Examples:
//
//	interfsim -workload M.lmps -nodes 8 -interfering 2 -pressure 6
//	interfsim -workload M.milc -ec2 -nodes 32 -interfering 16 -pressure 4
//	interfsim -workload M.lesl -pressures 8,5,0,0,3,0,0,0
//	interfsim -workload M.lmps -metrics - -listen :9090
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ec2"
	"repro/internal/fault"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/workloads"

	interference "repro"
)

// logger is installed by main before any fatal path can run.
var logger = obs.Nop()

func main() {
	var (
		name        = flag.String("workload", "M.lmps", "workload name (see -list)")
		nodes       = flag.Int("nodes", 8, "nodes the application spans")
		interfering = flag.Int("interfering", 1, "nodes carrying a bubble (homogeneous mode)")
		pressure    = flag.Float64("pressure", 6, "bubble pressure 1-8 (homogeneous mode)")
		pressureCSV = flag.String("pressures", "", "comma-separated per-node pressures (heterogeneous mode)")
		useEC2      = flag.Bool("ec2", false, "use the simulated EC2 environment")
		faultsPath  = flag.String("faults", "", "JSON fault plan to inject (crashes shrink the cluster, degrades slow their host)")
		seed        = flag.Int64("seed", 1, "experiment seed")
		list        = flag.Bool("list", false, "list available workloads and exit")
		metricsPath = flag.String("metrics", "", "write a JSON RunReport (metrics snapshot) to this file ('-' for stdout)")
		tracePath   = flag.String("trace", "", "write recorded spans as JSON to this file ('-' for stdout)")
		listen      = flag.String("listen", "", "serve the observability plane (/metrics, /healthz, /readyz, /api/*, /debug/pprof/) on this address for the duration of the run, e.g. :9090")
		logFormat   = flag.String("log-format", obs.LogText, "log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	l, err := obs.FlagLogger(*logFormat, *logLevel, "interfsim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "interfsim:", err)
		os.Exit(1)
	}
	logger = l

	out := report.NewReporter(os.Stdout)
	if *list {
		for _, w := range workloads.All() {
			out.KV(w.Name, "%s\tengine=%s", w.Kind, w.App.Engine)
		}
		if err := out.Flush(); err != nil {
			fatal(err)
		}
		return
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	telemetry.RegisterBuildInfo(reg)
	runReport := telemetry.NewRunReport("interfsim", *seed, os.Args[1:])
	srv, plane := servePlane(*listen, reg, tracer, runReport, logger)
	defer stopPlane(srv, plane)

	w, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	var env *measure.Env
	if *useEC2 {
		env, err = ec2.NewEnv(*seed)
	} else {
		env, err = interference.NewPrivateClusterEnv(*seed)
	}
	if err != nil {
		fatal(err)
	}
	env.Telemetry = reg
	env.Tracer = tracer

	// Fault plan: crashes remap the run's logical nodes onto the i-th
	// surviving host, degrades slow their host, and transient profiling
	// failures are retried a few times before giving up. Time-armed
	// faults (at > 0) need the round-driven daemon; a batch run only
	// activates the round-0 plan.
	var inj *fault.Injector
	survivingHosts := env.Cluster.NumHosts
	if *faultsPath != "" {
		plan, lerr := fault.LoadPlan(*faultsPath)
		if lerr != nil {
			fatal(lerr)
		}
		inj, lerr = fault.New(plan, reg)
		if lerr != nil {
			fatal(lerr)
		}
		inj.OnEvent = func(f fault.Fault) {
			logger.Warn("fault injected", "kind", f.Kind.String(), "host", f.Host,
				"factor", f.Factor, "rate", f.Rate)
		}
		inj.Activate(0)
		env.FailureHook = inj.FailureHook
		if downs := inj.DownHosts(); len(downs) > 0 {
			surviving := make([]int, 0, env.Cluster.NumHosts)
			for h := 0; h < env.Cluster.NumHosts; h++ {
				if !inj.IsDown(h) {
					surviving = append(surviving, h)
				}
			}
			survivingHosts = len(surviving)
			env.HostDegrade = func(node int) float64 {
				if node < 0 || node >= len(surviving) {
					return 1
				}
				return inj.DegradeFactor(surviving[node])
			}
		} else {
			env.HostDegrade = inj.DegradeFactor
		}
	}
	if srv != nil {
		srv.SetReady(true)
	}

	var pressures []float64
	if *pressureCSV != "" {
		for _, tok := range strings.Split(*pressureCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatal(fmt.Errorf("bad pressure %q: %w", tok, err))
			}
			pressures = append(pressures, v)
		}
	} else {
		pressures, err = measure.HomogeneousPressures(*nodes, *interfering, *pressure)
		if err != nil {
			fatal(err)
		}
	}

	if len(pressures) > survivingHosts {
		fatal(fmt.Errorf("workload spans %d nodes but only %d hosts survive the fault plan",
			len(pressures), survivingHosts))
	}

	raw, err := runRetrying(inj, func() (float64, error) { return env.RunWithBubbles(w, pressures) })
	if err != nil {
		fatal(err)
	}
	solo, err := runRetrying(inj, func() (float64, error) { return env.Solo(w, len(pressures)) })
	if err != nil {
		fatal(err)
	}
	out.KV("workload", "%s (%s, engine %s)", w.Name, w.Kind, w.App.Engine)
	out.KV("nodes", "%d", len(pressures))
	out.KV("pressures", "%v", pressures)
	out.KV("solo", "%.3f s", solo)
	out.KV("interfered", "%.3f s", raw)
	out.KV("normalized", "%.4f", raw/solo)
	if inj != nil {
		counts := inj.Counts()
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			out.KV("fault/"+k, "%d", counts[k])
		}
	}

	if err := telemetry.Emit(runReport, reg, tracer, *metricsPath, *tracePath); err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

// servePlane starts the batch-mode observability plane when listen is
// non-empty; the run serves /metrics etc. until main returns.
func servePlane(listen string, reg *telemetry.Registry, tracer *telemetry.Tracer,
	rep *telemetry.RunReport, l *slog.Logger) (*obs.Server, *obs.Running) {
	if listen == "" {
		return nil, nil
	}
	srv := obs.New(obs.Options{Registry: reg, Tracer: tracer, Report: rep, Logger: l})
	plane, err := srv.Start(listen)
	if err != nil {
		fatal(err)
	}
	return srv, plane
}

func stopPlane(srv *obs.Server, plane *obs.Running) {
	if plane == nil {
		return
	}
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := plane.Shutdown(ctx); err != nil {
		logger.Warn("plane shutdown", "err", err)
	}
}

// runRetrying runs one measurement, retrying transient injected
// profiling failures a few times before surfacing the error.
func runRetrying(inj *fault.Injector, run func() (float64, error)) (float64, error) {
	const attempts = 5
	v, err := run()
	for i := 1; err != nil && inj != nil && i < attempts; i++ {
		var te *fault.TransientError
		if !errors.As(err, &te) {
			break
		}
		logger.Warn("transient profiling failure; retrying", "op", te.Op, "attempt", i)
		v, err = run()
	}
	return v, err
}

func fatal(err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
