// Command interfsim runs one distributed workload on the simulated
// consolidated cluster under a chosen interference configuration and
// prints its raw and normalized execution times.
//
// Examples:
//
//	interfsim -workload M.lmps -nodes 8 -interfering 2 -pressure 6
//	interfsim -workload M.milc -ec2 -nodes 32 -interfering 16 -pressure 4
//	interfsim -workload M.lesl -pressures 8,5,0,0,3,0,0,0
//	interfsim -workload M.lmps -metrics out.json -trace trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ec2"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/workloads"

	interference "repro"
)

func main() {
	var (
		name        = flag.String("workload", "M.lmps", "workload name (see -list)")
		nodes       = flag.Int("nodes", 8, "nodes the application spans")
		interfering = flag.Int("interfering", 1, "nodes carrying a bubble (homogeneous mode)")
		pressure    = flag.Float64("pressure", 6, "bubble pressure 1-8 (homogeneous mode)")
		pressureCSV = flag.String("pressures", "", "comma-separated per-node pressures (heterogeneous mode)")
		useEC2      = flag.Bool("ec2", false, "use the simulated EC2 environment")
		seed        = flag.Int64("seed", 1, "experiment seed")
		list        = flag.Bool("list", false, "list available workloads and exit")
		metricsPath = flag.String("metrics", "", "write a JSON RunReport (metrics snapshot) to this file")
		tracePath   = flag.String("trace", "", "write recorded spans as JSON to this file")
	)
	flag.Parse()

	out := report.NewReporter(os.Stdout)
	if *list {
		for _, w := range workloads.All() {
			out.KV(w.Name, "%s\tengine=%s", w.Kind, w.App.Engine)
		}
		if err := out.Flush(); err != nil {
			fatal(err)
		}
		return
	}

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.DefaultSpanCapacity)
	runReport := telemetry.NewRunReport("interfsim", *seed, os.Args[1:])

	w, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	var env *measure.Env
	if *useEC2 {
		env, err = ec2.NewEnv(*seed)
	} else {
		env, err = interference.NewPrivateClusterEnv(*seed)
	}
	if err != nil {
		fatal(err)
	}
	env.Telemetry = reg
	env.Tracer = tracer

	var pressures []float64
	if *pressureCSV != "" {
		for _, tok := range strings.Split(*pressureCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatal(fmt.Errorf("bad pressure %q: %w", tok, err))
			}
			pressures = append(pressures, v)
		}
	} else {
		pressures, err = measure.HomogeneousPressures(*nodes, *interfering, *pressure)
		if err != nil {
			fatal(err)
		}
	}

	raw, err := env.RunWithBubbles(w, pressures)
	if err != nil {
		fatal(err)
	}
	solo, err := env.Solo(w, len(pressures))
	if err != nil {
		fatal(err)
	}
	out.KV("workload", "%s (%s, engine %s)", w.Name, w.Kind, w.App.Engine)
	out.KV("nodes", "%d", len(pressures))
	out.KV("pressures", "%v", pressures)
	out.KV("solo", "%.3f s", solo)
	out.KV("interfered", "%.3f s", raw)
	out.KV("normalized", "%.4f", raw/solo)

	if err := telemetry.Emit(runReport, reg, tracer, *metricsPath, *tracePath); err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "interfsim:", err)
	os.Exit(1)
}
